package kwbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// SchemaVersion identifies the BENCH_kwbench.json layout. Bump only with a
// migration note in docs/BENCHMARKS.md.
const SchemaVersion = 1

// Report is the unified BENCH_kwbench.json document. Scenario results are
// keyed by name: re-running a scenario replaces its earlier entry and
// leaves the rest untouched, so one file accumulates the whole trajectory.
type Report struct {
	Schema      int              `json:"kwbench_schema"`
	Description string           `json:"description"`
	Environment Environment      `json:"environment"`
	Scenarios   []ScenarioResult `json:"scenarios"`
}

// Environment records where the numbers were produced.
type Environment struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// NumCPU is the hardware parallelism of the recording host. Read it
	// before interpreting scheduler or shard comparisons: when GOMAXPROCS
	// exceeds it the parallel arms timeshare and the rows record only
	// scheduling overhead, not the imbalance win.
	NumCPU int `json:"num_cpu"`
}

// LatencySummary is the histogram extract every scenario reports, in ms.
type LatencySummary struct {
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	Min  float64 `json:"min_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`
}

// GraphInfo identifies one member of a scenario's graph set.
type GraphInfo struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	M    int    `json:"m"`
	// LoadMS is how long materializing this graph took (generation, text
	// parse, or binary container load), measured outside the op windows.
	LoadMS float64 `json:"load_ms,omitempty"`
}

// LoadCompare is the extra block of a load-loop scenario: the same graph
// loaded as edge-list text versus the kwcsr binary container. Both means
// are wall-clock per full load, digest-verified against the generated
// original.
type LoadCompare struct {
	// TextOps is how many loads the text and verified-binary arms each
	// average over (the trusted-binary side's op count is the scenario's
	// Ops field).
	TextOps int `json:"text_ops"`
	// All three timings are medians: the arms run few ops and a single GC
	// pause or writeback stall would poison a mean.
	TextParseMS float64 `json:"text_parse_ms"`
	// BinaryLoadMS is the trusted-reader median: structural validation but
	// no SHA-256 recompute inside the stopwatch — symmetric with the text
	// parser, which verifies nothing. The harness digest-checks every load
	// of both arms outside the timing.
	BinaryLoadMS float64 `json:"binary_load_ms"`
	// BinaryVerifyMS is the verifying-reader median (embedded digest
	// recomputed in the stopwatch) — the cost a cold serve preload pays.
	BinaryVerifyMS float64 `json:"binary_verify_ms"`
	// MappedLoadMS is the zero-copy mmap-open median (graphio.OpenMapped:
	// structural validation over the mapping, no byte copies, no digest
	// recompute) — the startup cost of `kwmds serve -preload x=file.kwcsr`.
	// Absent in reports predating the mapped store.
	MappedLoadMS float64 `json:"mapped_load_ms,omitempty"`
	// Speedup is TextParseMS / BinaryLoadMS.
	Speedup     float64 `json:"speedup"`
	TextBytes   int64   `json:"text_bytes"`
	BinaryBytes int64   `json:"binary_bytes"`
}

// MobilityResult is the dynamic-graph extras of a mobility replay.
type MobilityResult struct {
	Epochs int `json:"epochs"`
	// Mode is the replay mode (replay | rebuild | churn; empty in reports
	// predating the dynamic-graph engine means replay).
	Mode string `json:"mode,omitempty"`
	// MeanKept/Added/Removed are per-epoch-transition dominating-set
	// churn averages (mobility.Churn over consecutive epochs).
	MeanKept    float64 `json:"mean_kept"`
	MeanAdded   float64 `json:"mean_added"`
	MeanRemoved float64 `json:"mean_removed"`
	// MeanEdgeChurn is the mean fraction of edges NOT shared between
	// consecutive snapshots — how fast the topology itself moves.
	MeanEdgeChurn float64 `json:"mean_edge_churn"`
	// MeanEdgeDeltas is the mean number of link events (insertions plus
	// removals) per measured epoch (churn mode only).
	MeanEdgeDeltas float64 `json:"mean_edge_deltas,omitempty"`
	// MeanCommitMS is the mean time of the dyngraph apply+commit inside
	// the epoch op (churn mode only); the rest of the op is the re-solve.
	MeanCommitMS float64 `json:"mean_commit_ms,omitempty"`
	// RepairedEpochs counts measured epochs whose Resolve took the
	// incremental δ⁽¹⁾/δ⁽²⁾ repair path rather than the full-solve
	// fallback (churn mode only).
	RepairedEpochs int `json:"repaired_epochs,omitempty"`
}

// OpKindRow is one operation kind's split of a mixed-workload scenario:
// its outcome counts and the latency distribution of its successful ops.
type OpKindRow struct {
	Kind    string         `json:"kind"`
	Ops     int            `json:"ops"`
	Errors  int            `json:"errors,omitempty"`
	Sheds   int            `json:"sheds,omitempty"`
	Latency LatencySummary `json:"latency_ms"`
}

// TenantRow is one tenant loop's split of a multi-tenant scenario. Tenants
// share the backend (one serve instance's LRU and worker pool) but rotate
// disjoint seed windows, so the rows expose cross-tenant interference.
type TenantRow struct {
	Tenant  int            `json:"tenant"`
	Ops     int            `json:"ops"`
	Errors  int            `json:"errors,omitempty"`
	Sheds   int            `json:"sheds,omitempty"`
	Latency LatencySummary `json:"latency_ms"`
}

// SLOOutcome echoes a gated scenario's bounds and records any violations.
// A non-empty Violations list makes `kwmds bench` exit non-zero — after
// the report is written, so a failing row is still inspectable here.
type SLOOutcome struct {
	Bounds     SLOSpec  `json:"bounds"`
	Violations []string `json:"violations,omitempty"`
}

// ShardRun is one arm of a shards sweep: the scenario's full measured loop
// executed with the partitioned engine at one shard count.
type ShardRun struct {
	Shards     int     `json:"shards"`
	Ops        int     `json:"ops"`
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50        float64 `json:"p50_ms"`
	P99        float64 `json:"p99_ms"`
}

// ScenarioResult is one scenario's measured outcome.
type ScenarioResult struct {
	Name        string      `json:"name"`
	Description string      `json:"description,omitempty"`
	Driver      string      `json:"driver"`
	Loop        string      `json:"loop"` // closed | open | replay | load
	Graphs      []GraphInfo `json:"graphs"`
	Combos      int         `json:"combos"`
	Seeds       int         `json:"seeds"`

	// Concurrency is the closed-loop worker count (0 for open loop and
	// replay).
	Concurrency int `json:"concurrency,omitempty"`

	// BatchSize is the closed-loop solve-batch width: workers claimed
	// requests in contiguous chunks of this size and executed each chunk
	// through the batched facade (0/absent means per-op solves).
	BatchSize int `json:"batch_size,omitempty"`

	// Reorder reports that measured solves ran over a degree-ordered
	// relabeling of each graph (spec `reorder`); outputs are bit-identical
	// to the plain path, so the field only marks which memory layout was
	// measured.
	Reorder bool `json:"reorder,omitempty"`
	// Sched is the fastpath chunk-scheduler arm: "steal" (guided
	// self-scheduling, the default behavior) or "fixed" (the historical
	// equal word split, the control arm of a skew pair). Absent when the
	// spec left the scheduler at its default.
	Sched string `json:"sched,omitempty"`

	WarmupOps int `json:"warmup_ops"`
	// Ops counts successful measured operations only: errored and shed
	// operations are excluded from the latency, size and throughput stats
	// and reported in Errors/Sheds instead.
	Ops        int     `json:"ops"`
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`

	// Errors counts measured operations that failed. Without an slo
	// error_rate bound the first error aborts the run (nothing is written);
	// with one, errors are counted here and gated against the bound.
	Errors int `json:"errors,omitempty"`
	// Sheds counts operations the server refused with 429 (admission
	// control). Sheds never abort a run and are never errors.
	Sheds int `json:"sheds,omitempty"`
	// ErrorRate/ShedRate are Errors and Sheds over attempted operations
	// (successes + errors + sheds).
	ErrorRate float64 `json:"error_rate,omitempty"`
	ShedRate  float64 `json:"shed_rate,omitempty"`

	// ColdMS is the latency of the first warmup operation (for mobility
	// replays, the first epoch's first solve): against a serve driver it
	// is the cache-populating cold request. 0 when the scenario has no
	// warmup phase. Warmup errors always abort the run — only measured-
	// phase errors can be tolerated (see Errors).
	ColdMS float64 `json:"cold_ms,omitempty"`

	// TargetRate/AchievedRate are set for open-loop scenarios. For shaped
	// arrival curves TargetRate is the baseline (trough) rate and Curve
	// names the shape (flash | diurnal; absent means constant).
	TargetRate   float64 `json:"target_rate,omitempty"`
	AchievedRate float64 `json:"achieved_rate,omitempty"`
	Curve        string  `json:"curve,omitempty"`

	Latency LatencySummary `json:"latency_ms"`

	// Tenants is the tenant-loop count of a multi-tenant scenario (0/absent
	// means single-tenant); TenantRows carries the per-tenant splits.
	Tenants    int         `json:"tenants,omitempty"`
	TenantRows []TenantRow `json:"tenant_rows,omitempty"`
	// MixRows carries the per-operation-kind splits of a mixed workload.
	MixRows []OpKindRow `json:"mix_rows,omitempty"`
	// SLO echoes a gated scenario's bounds and any violations.
	SLO *SLOOutcome `json:"slo,omitempty"`

	// AllocsPerOp/BytesPerOp cover the measured phase across the whole
	// in-process stack (driver, codec, solver; for http-serve also the
	// client and handlers).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`

	// HitRate is the fraction of measured operations answered from the
	// serve cache (http-serve driver with a spawned server only).
	HitRate *float64 `json:"hit_rate,omitempty"`

	// Shards is the partitioned-engine shard count of the main result block
	// (the last entry of a shards sweep; 0/absent means the unsharded path).
	Shards int `json:"shards,omitempty"`
	// ShardSweep holds one row per swept shard count — the same request
	// schedule run once per count, so the rows are directly comparable.
	ShardSweep []ShardRun `json:"shard_sweep,omitempty"`

	// CrossChecked/Mismatches report the sim-vs-fast verification pass.
	CrossChecked int `json:"cross_checked,omitempty"`
	Mismatches   int `json:"mismatches,omitempty"`

	Mobility *MobilityResult `json:"mobility,omitempty"`

	// Load is the text-vs-binary comparison block of a load-loop scenario.
	Load *LoadCompare `json:"load,omitempty"`

	// Recovery is the durability block of a recovery-loop scenario.
	Recovery *RecoveryResult `json:"recovery,omitempty"`
}

// RecoveryResult is the extra block of a recovery scenario: what the WAL
// chain looked like and what reopening it cost. Every restart recovers the
// identical chain, so the snapshot/replay accounting is a single set of
// values, not a distribution; the timing spread across restarts is the
// scenario's main latency block.
type RecoveryResult struct {
	// Epochs is the committed churn history length; Restarts the number of
	// recovery cycles executed (the measured ops plus warmup).
	Epochs   int `json:"epochs"`
	Restarts int `json:"restarts"`
	// SnapshotEpoch is the epoch of the snapshot recovery starts from;
	// ReplayedEpochs how many log records it replays on top.
	SnapshotEpoch  int64 `json:"snapshot_epoch"`
	ReplayedEpochs int64 `json:"replayed_epochs"`
	// WALBytes/SnapshotBytes are the on-disk chain sizes recovered from.
	WALBytes      int64 `json:"wal_bytes"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// RecoveryMS is the median timed reopen: snapshot mmap + structural
	// and digest verification + log replay.
	RecoveryMS float64 `json:"recovery_ms"`
	// ReplayMSPerEpoch is RecoveryMS over ReplayedEpochs (absent when the
	// snapshot held the whole state).
	ReplayMSPerEpoch float64 `json:"replay_ms_per_epoch,omitempty"`
	// MeanEdgeDeltas is the mean number of link events per committed epoch.
	MeanEdgeDeltas float64 `json:"mean_edge_deltas"`
	// AppendMS is the mean synced append (write + fsync) during the drive
	// phase — the per-mutate durability tax the log charges.
	AppendMS float64 `json:"append_ms,omitempty"`
}

// CurrentEnvironment captures the running process's environment block.
func CurrentEnvironment() Environment {
	return Environment{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// reportDescription is the fixed preamble of BENCH_kwbench.json.
const reportDescription = "Unified kwbench scenario results (kwmds bench). Each entry is one scenario run: a declarative spec (scenarios/*.json|*.toml) selecting graphs, a pipeline matrix, a driver (inproc-fast | inproc-sim | http-serve) and a loop mode (closed concurrency, open target-rate, or mobility replay). Latencies are HDR-histogram percentiles over the measured phase; open-loop latency is measured from the scheduled dispatch time, so queueing delay is included. See docs/BENCHMARKS.md for the methodology and field-by-field schema."

// MergeInto folds results into the report at path: existing scenario
// entries with matching names are replaced, others preserved, and the
// environment block refreshed. A missing or unreadable-as-report file is
// started fresh.
func MergeInto(path string, results []ScenarioResult) (*Report, error) {
	rep := &Report{
		Schema:      SchemaVersion,
		Description: reportDescription,
		Environment: CurrentEnvironment(),
	}
	if data, err := os.ReadFile(path); err == nil {
		var old Report
		if json.Unmarshal(data, &old) == nil && old.Schema == SchemaVersion {
			rep.Scenarios = old.Scenarios
		}
	}
	for _, res := range results {
		replaced := false
		for i := range rep.Scenarios {
			if rep.Scenarios[i].Name == res.Name {
				rep.Scenarios[i] = res
				replaced = true
				break
			}
		}
		if !replaced {
			rep.Scenarios = append(rep.Scenarios, res)
		}
	}
	sort.SliceStable(rep.Scenarios, func(i, j int) bool {
		return rep.Scenarios[i].Name < rep.Scenarios[j].Name
	})
	if err := ValidateReport(rep); err != nil {
		return nil, err
	}
	if err := WriteJSONFile(path, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// WriteJSONFile writes v to path as indented JSON — the one writer behind
// every benchmark artifact, so close/encode error handling lives in one
// place.
func WriteJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ValidateReport checks a report document against the schema: version,
// required fields, non-degenerate counters and monotonic percentiles. CI
// runs it (via `kwmds bench -validate`) over freshly produced output so a
// schema regression fails the build rather than silently shipping an
// unreadable trajectory file.
func ValidateReport(rep *Report) error {
	if rep.Schema != SchemaVersion {
		return fmt.Errorf("kwbench: report schema %d, want %d", rep.Schema, SchemaVersion)
	}
	if rep.Description == "" {
		return fmt.Errorf("kwbench: report missing description")
	}
	if rep.Environment.GoVersion == "" || rep.Environment.GOOS == "" {
		return fmt.Errorf("kwbench: report missing environment block")
	}
	if len(rep.Scenarios) == 0 {
		return fmt.Errorf("kwbench: report has no scenarios")
	}
	seen := map[string]bool{}
	for i, s := range rep.Scenarios {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("kwbench: scenario %d (%q): %s", i, s.Name, fmt.Sprintf(format, args...))
		}
		if s.Name == "" {
			return fail("missing name")
		}
		if seen[s.Name] {
			return fail("duplicate scenario name")
		}
		seen[s.Name] = true
		switch s.Driver {
		case DriverInprocFast, DriverInprocSim, DriverHTTPServe:
		default:
			return fail("unknown driver %q", s.Driver)
		}
		switch s.Loop {
		case "closed", "open", "replay", "load", "recovery":
		default:
			return fail("unknown loop %q", s.Loop)
		}
		if s.Ops < 1 {
			return fail("ops = %d, want ≥ 1", s.Ops)
		}
		if s.ElapsedSec <= 0 || s.OpsPerSec <= 0 {
			return fail("degenerate timing elapsed=%v ops/s=%v", s.ElapsedSec, s.OpsPerSec)
		}
		if s.Mismatches < 0 || s.ColdMS < 0 {
			return fail("negative counters")
		}
		if s.Errors < 0 || s.Sheds < 0 {
			return fail("negative error/shed counters")
		}
		if s.ErrorRate < 0 || s.ErrorRate > 1 || s.ShedRate < 0 || s.ShedRate > 1 {
			return fail("error_rate/shed_rate outside [0, 1]: %v / %v", s.ErrorRate, s.ShedRate)
		}
		if (s.Errors > 0) != (s.ErrorRate > 0) || (s.Sheds > 0) != (s.ShedRate > 0) {
			return fail("error/shed counts and rates disagree: errors=%d rate=%v sheds=%d rate=%v",
				s.Errors, s.ErrorRate, s.Sheds, s.ShedRate)
		}
		if len(s.MixRows) > 0 {
			sumOps := 0
			for _, r := range s.MixRows {
				switch r.Kind {
				case KindCachedSolve, KindColdSolve, KindMutate, KindBatchSolve:
				default:
					return fail("unknown mix row kind %q", r.Kind)
				}
				if r.Ops < 0 || r.Errors < 0 || r.Sheds < 0 {
					return fail("negative mix row counters for kind %q", r.Kind)
				}
				sumOps += r.Ops
			}
			if sumOps != s.Ops {
				return fail("mix rows account for %d ops, scenario has %d", sumOps, s.Ops)
			}
		}
		if len(s.TenantRows) > 0 {
			if s.Tenants != len(s.TenantRows) {
				return fail("tenants=%d but %d tenant rows", s.Tenants, len(s.TenantRows))
			}
			sumOps := 0
			for i, r := range s.TenantRows {
				if r.Tenant != i {
					return fail("tenant row %d labeled %d", i, r.Tenant)
				}
				if r.Ops < 0 || r.Errors < 0 || r.Sheds < 0 {
					return fail("negative tenant row counters for tenant %d", r.Tenant)
				}
				sumOps += r.Ops
			}
			if sumOps != s.Ops {
				return fail("tenant rows account for %d ops, scenario has %d", sumOps, s.Ops)
			}
		}
		switch s.Curve {
		case "", CurveConstant, CurveFlash, CurveDiurnal:
		default:
			return fail("unknown curve %q", s.Curve)
		}
		if s.Curve != "" && s.Loop != "open" {
			return fail("curve %q on a %s loop", s.Curve, s.Loop)
		}
		if s.AllocsPerOp < 0 || s.BytesPerOp < 0 {
			return fail("negative allocation counters")
		}
		l := s.Latency
		if !(l.Min <= l.P50 && l.P50 <= l.P90 && l.P90 <= l.P99 && l.P99 <= l.P999 && l.P999 <= l.Max) {
			return fail("non-monotonic percentiles: %+v", l)
		}
		if l.Min < 0 {
			return fail("negative latency: %+v", l)
		}
		if s.Loop == "open" && s.TargetRate <= 0 {
			return fail("open loop without target_rate")
		}
		if s.Loop == "replay" && s.Mobility == nil {
			return fail("replay without a mobility block")
		}
		if s.Loop == "load" && s.Load == nil {
			return fail("load loop without a load block")
		}
		if s.Loop == "recovery" && s.Recovery == nil {
			return fail("recovery loop without a recovery block")
		}
		if r := s.Recovery; r != nil {
			if r.Epochs < 1 || r.Restarts < 1 {
				return fail("degenerate recovery counts: %+v", *r)
			}
			if r.RecoveryMS <= 0 || r.ReplayedEpochs < 0 || r.SnapshotEpoch < 0 ||
				r.WALBytes < 0 || r.SnapshotBytes <= 0 || r.ReplayMSPerEpoch < 0 {
				return fail("degenerate recovery block: %+v", *r)
			}
			if r.SnapshotEpoch+r.ReplayedEpochs != int64(r.Epochs) {
				return fail("recovery accounting: snapshot epoch %d + replayed %d ≠ %d epochs",
					r.SnapshotEpoch, r.ReplayedEpochs, r.Epochs)
			}
		}
		if s.Load != nil && (s.Load.TextParseMS <= 0 || s.Load.BinaryLoadMS <= 0 || s.Load.BinaryVerifyMS <= 0 || s.Load.Speedup <= 0 || s.Load.MappedLoadMS < 0) {
			return fail("degenerate load comparison: %+v", *s.Load)
		}
		if len(s.Graphs) == 0 {
			return fail("empty graph list")
		}
	}
	return nil
}

// ValidateReportFile loads path and validates it.
func ValidateReportFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("kwbench: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("kwbench: %s: %w", path, err)
	}
	if err := ValidateReport(&rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// LegacyServeRun mirrors one row of the pre-kwbench BENCH_serve.json shape
// ("mode" + the serve load-generator report fields), so serve-driver
// scenario results can also be exported where existing tooling reads them.
type LegacyServeRun struct {
	Mode         string  `json:"mode"`
	Workload     string  `json:"workload"`
	N            int     `json:"n"`
	M            int     `json:"m"`
	Concurrency  int     `json:"concurrency"`
	Requests     int     `json:"requests"`
	Seeds        int     `json:"seeds"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	ReqPerSec    float64 `json:"req_per_sec"`
	ColdMS       float64 `json:"cold_ms"`
	P50MS        float64 `json:"p50_ms"`
	P99MS        float64 `json:"p99_ms"`
	HitRate      float64 `json:"hit_rate"`
	AllocsPerReq float64 `json:"allocs_per_req"`
}

// LegacyServeRuns converts http-serve closed-loop scenario results into the
// legacy BENCH_serve.json row shape (one row per scenario, first graph's
// identity). Non-serve and open-loop scenarios are skipped: the legacy
// shape cannot express them.
func LegacyServeRuns(results []ScenarioResult) []LegacyServeRun {
	var runs []LegacyServeRun
	for _, s := range results {
		if s.Driver != DriverHTTPServe || s.Loop != "closed" || len(s.Graphs) == 0 {
			continue
		}
		mode := "uncached"
		hit := 0.0
		if s.HitRate != nil {
			hit = *s.HitRate
			if hit > 0.5 {
				mode = "cached"
			}
		}
		runs = append(runs, LegacyServeRun{
			Mode: mode, Workload: s.Graphs[0].Name,
			N: s.Graphs[0].N, M: s.Graphs[0].M,
			Concurrency: s.Concurrency, Requests: s.Ops, Seeds: s.Seeds,
			ElapsedSec: s.ElapsedSec, ReqPerSec: s.OpsPerSec,
			ColdMS: s.ColdMS, P50MS: s.Latency.P50, P99MS: s.Latency.P99,
			HitRate: hit, AllocsPerReq: s.AllocsPerOp,
		})
	}
	return runs
}

// WriteLegacyServe writes runs in the BENCH_serve.json document shape.
func WriteLegacyServe(path string, runs []LegacyServeRun) error {
	return WriteJSONFile(path, map[string]any{
		"description": "Legacy-shaped serve rows exported by kwmds bench (see BENCH_kwbench.json for the full results).",
		"environment": CurrentEnvironment(),
		"runs":        runs,
	})
}
