package kwbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sync"
	"time"

	"kwmds"
	"kwmds/internal/graph"
	"kwmds/internal/graphio"
	"kwmds/internal/server"
)

// LoadedGraph is one materialized member of a scenario's graph set.
type LoadedGraph struct {
	Name string
	G    *graph.Graph
	// LoadMS is how long materializing the graph took (generation, text
	// parse, or binary load) — reported per graph so graph-acquisition
	// cost is visible separately from solve cost.
	LoadMS float64
}

// Request is one operation of the workload: a graph selection plus one
// matrix combination and a rounding seed. The runner precomputes the whole
// request schedule so it is a pure function of the scenario spec.
type Request struct {
	Graph   int // index into the loaded graph set
	Algo    string
	K       int
	Seed    int64
	Variant string
	// Kind is the mixed-workload operation kind ("" = legacy solve, which
	// behaves like cached_solve). For mutate ops Seed picks the edge; for
	// batch_solve ops the batch's member seeds derive from Seed.
	Kind string
	// Tenant is the owning tenant loop of a multi-tenant scenario (0 for
	// single-tenant).
	Tenant int
}

// OpResult is what a driver reports per operation; the runner uses Size for
// cross-checking, Cached for hit-rate accounting, InDS (inproc drivers
// only) for the mobility replay's churn accounting, and Shed to count 429
// admission refusals as sheds rather than errors.
type OpResult struct {
	Size   int
	Cached bool
	Shed   bool
	InDS   []bool
}

// Driver executes operations against one backend. Implementations must be
// safe for concurrent Do calls — both loop modes issue them from many
// goroutines.
type Driver interface {
	// Prepare receives the materialized graph set before any operation.
	Prepare(graphs []LoadedGraph) error
	// Do executes one operation.
	Do(req Request) (OpResult, error)
	// Close releases spawned resources (servers, clients).
	Close() error
}

// newDriver constructs the scenario's driver. concurrency is the peak
// number of in-flight operations, used to size per-solve parallelism and
// HTTP connection pools. shards > 1 selects the partitioned engine (one
// sweep arm of Scenario.Shards); 0 or 1 is the plain unsharded path.
func newDriver(sc *Scenario, concurrency, shards int) (Driver, error) {
	switch sc.Driver {
	case DriverInprocFast:
		return &inprocDriver{
			sequential:  true,
			concurrency: concurrency,
			shards:      shards,
			reorder:     sc.Reorder,
			fixedChunks: sc.Sched == "fixed",
		}, nil
	case DriverInprocSim:
		return &inprocDriver{sequential: false, concurrency: concurrency}, nil
	case DriverHTTPServe:
		d := &httpDriver{concurrency: concurrency, shards: shards, timeout: 120 * time.Second}
		if sc.HTTP != nil {
			d.url = sc.HTTP.URL
			d.workers = sc.HTTP.Workers
			d.cacheEntries = sc.HTTP.CacheEntries
			d.noBatch = sc.HTTP.NoBatch
			d.maxQueue = sc.HTTP.MaxQueue
			if sc.HTTP.TimeoutSec > 0 {
				d.timeout = time.Duration(sc.HTTP.TimeoutSec * float64(time.Second))
			}
			if sc.HTTP.QueueTimeoutSec > 0 {
				d.queueTimeout = time.Duration(sc.HTTP.QueueTimeoutSec * float64(time.Second))
			}
		}
		d.mutate = sc.Mix != nil && sc.Mix.Mutate > 0
		return d, nil
	default:
		return nil, fmt.Errorf("kwbench: unknown driver %q", sc.Driver)
	}
}

// inprocDriver runs operations through the public facade: the fastpath
// backend when sequential, the message-passing simulation otherwise. It is
// the driver for measuring pure solve compute, with no protocol overhead on
// the measured path.
type inprocDriver struct {
	sequential  bool
	concurrency int
	shards      int
	reorder     bool
	fixedChunks bool
	graphs      []LoadedGraph
	// parts are the per-graph partitions for sharded arms (shards > 1):
	// built once in Prepare so the measured operations solve through
	// DominatingSetSharded without re-partitioning per op.
	parts []*graph.ShardedCSR
	// relabs are the per-graph degree-ordered relabelings for reorder
	// scenarios, built once in Prepare — like partitions, the relabeling is
	// per-topology setup, not per-op work.
	relabs []*kwmds.ReorderedGraph
}

func (d *inprocDriver) Prepare(graphs []LoadedGraph) error {
	d.graphs = graphs
	if d.shards > 1 {
		d.parts = make([]*graph.ShardedCSR, len(graphs))
		for i, lg := range graphs {
			sc, err := kwmds.PartitionGraph(lg.G, d.shards)
			if err != nil {
				return fmt.Errorf("kwbench: partitioning %q into %d shards: %w", lg.Name, d.shards, err)
			}
			d.parts[i] = sc
		}
	}
	if d.reorder {
		d.relabs = make([]*kwmds.ReorderedGraph, len(graphs))
		for i, lg := range graphs {
			d.relabs[i] = kwmds.Reorder(lg.G)
		}
	}
	return nil
}

// pipelineOptions is the single mapping from the scenario vocabulary
// (algo, variant strings) onto facade options; the inproc driver, the
// mobility rebuild mode and the cross-check passes all resolve through it
// so the "directly comparable" contract between paths cannot drift.
func pipelineOptions(algo, variant string, k int, seed int64, sequential bool) kwmds.Options {
	opts := kwmds.Options{K: k, Seed: seed, Sequential: sequential, KnownDelta: algo == "kw2"}
	if variant == "ln-lnln" {
		opts.Variant = kwmds.VariantLnMinusLnLn
	}
	return opts
}

func (d *inprocDriver) options(req Request) kwmds.Options {
	opts := pipelineOptions(req.Algo, req.Variant, req.K, req.Seed, d.sequential)
	if d.sequential {
		// Split the machine between concurrent operations the same way
		// the serve subsystem does: with C operations in flight each
		// solver gets its share of GOMAXPROCS instead of a full-width
		// phase pool.
		opts.SolverWorkers = max(1, runtime.GOMAXPROCS(0)/max(1, d.concurrency))
		opts.FixedChunks = d.fixedChunks
		if d.reorder && req.Algo != "kwcds" {
			opts.Reordered = d.relabs[req.Graph]
		}
	}
	return opts
}

func (d *inprocDriver) Do(req Request) (OpResult, error) {
	g := d.graphs[req.Graph].G
	if req.Kind == KindBatchSolve {
		// One batch_solve op is a fixed-width DominatingSetMany call: the
		// member seeds derive from the op's seed so the batch content stays
		// a pure function of the request schedule.
		optsList := make([]kwmds.Options, mixBatchWidth)
		for j := range optsList {
			r := req
			r.Seed = req.Seed*mixBatchWidth + int64(j)
			optsList[j] = d.options(r)
		}
		results, err := kwmds.DominatingSetMany(g, optsList)
		if err != nil {
			return OpResult{}, err
		}
		return OpResult{Size: results[0].Size, InDS: results[0].InDS}, nil
	}
	opts := d.options(req)
	switch req.Algo {
	case "frac":
		if _, err := kwmds.FractionalDominatingSet(g, opts); err != nil {
			return OpResult{}, err
		}
		return OpResult{}, nil
	case "kwcds":
		res, err := kwmds.ConnectedDominatingSet(g, opts)
		if err != nil {
			return OpResult{}, err
		}
		return OpResult{Size: res.Size, InDS: res.InDS}, nil
	default: // kw, kw2
		var res *kwmds.Result
		var err error
		if d.shards > 1 {
			res, err = kwmds.DominatingSetSharded(d.parts[req.Graph], opts)
		} else {
			res, err = kwmds.DominatingSet(g, opts)
		}
		if err != nil {
			return OpResult{}, err
		}
		return OpResult{Size: res.Size, InDS: res.InDS}, nil
	}
}

func (d *inprocDriver) Close() error { return nil }

// DoBatch executes consecutive requests through kwmds.DominatingSetMany,
// splitting at graph changes (a batch shares one graph by construction of
// the facade API). Outputs are bit-identical to per-request Do calls; the
// runner's cross-check pass verifies exactly that against the sim backend.
// Only kw|kw2 requests are valid here (enforced at scenario validation).
func (d *inprocDriver) DoBatch(reqs []Request) ([]OpResult, error) {
	out := make([]OpResult, 0, len(reqs))
	for start := 0; start < len(reqs); {
		end := start + 1
		for end < len(reqs) && reqs[end].Graph == reqs[start].Graph {
			end++
		}
		run := reqs[start:end]
		optsList := make([]kwmds.Options, len(run))
		for i, r := range run {
			optsList[i] = d.options(r)
		}
		results, err := kwmds.DominatingSetMany(d.graphs[run[0].Graph].G, optsList)
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			out = append(out, OpResult{Size: res.Size, InDS: res.InDS})
		}
		start = end
	}
	return out, nil
}

// httpDriver drives POST /v1/solve. With no URL it spawns an in-process
// serve instance preloaded with the scenario's graph set — the whole stack
// (HTTP transport, JSON codec, worker pool, LRU, single-flight) is on the
// measured path, over loopback. With a URL it targets a remote server that
// must already hold the graphs under the same names.
type httpDriver struct {
	url          string
	workers      int
	cacheEntries int
	concurrency  int
	noBatch      bool
	shards       int
	timeout      time.Duration
	maxQueue     int
	queueTimeout time.Duration
	mutate       bool

	graphs  []LoadedGraph
	srv     *server.Server // nil when remote
	ts      *httptest.Server
	client  *http.Client
	baseURL string
	// mutators serialize mutate ops per graph (index-aligned with graphs);
	// built in Prepare only when the mix carries mutate weight.
	mutators []*graphMutator
	// hits0/misses0 snapshot the cache counters at the warmup/measure
	// boundary (MarkWarm) so Stats reports measured-phase deltas.
	hits0, misses0 int64
}

// graphMutator serializes mutate ops against one graph and tracks which of
// its original edges are currently toggled off, so every mutate op is a
// clean remove-or-restore of an existing edge and never a spurious 400.
type graphMutator struct {
	mu    sync.Mutex
	edges [][2]int
	off   map[int]bool
}

func (d *httpDriver) Prepare(graphs []LoadedGraph) error {
	d.graphs = graphs
	if d.url == "" {
		m := make(map[string]*graph.Graph, len(graphs))
		for _, lg := range graphs {
			m[lg.Name] = lg.G
		}
		d.srv = server.New(server.Config{
			Workers:         d.workers,
			CacheEntries:    d.cacheEntries,
			Graphs:          m,
			DisableBatching: d.noBatch,
			Shards:          d.shards,
			MaxQueue:        d.maxQueue,
			QueueTimeout:    d.queueTimeout,
		})
		d.ts = httptest.NewServer(d.srv.Handler())
		d.baseURL = d.ts.URL
	} else {
		d.baseURL = d.url
	}
	if d.mutate {
		d.mutators = make([]*graphMutator, len(graphs))
		for i, lg := range graphs {
			edges := lg.G.Edges()
			if len(edges) == 0 {
				return fmt.Errorf("kwbench: graph %q has no edges to mutate", lg.Name)
			}
			d.mutators[i] = &graphMutator{edges: edges, off: make(map[int]bool)}
		}
	}
	d.client = &http.Client{
		Timeout: d.timeout, // a hung target fails the run instead of wedging it
		Transport: &http.Transport{
			MaxIdleConnsPerHost: max(2, d.concurrency),
		},
	}
	return nil
}

func (d *httpDriver) Do(req Request) (OpResult, error) {
	if req.Kind == KindMutate {
		return d.doMutate(req)
	}
	body, err := json.Marshal(graphio.SolveRequest{
		GraphRef: d.graphs[req.Graph].Name,
		Algo:     req.Algo,
		K:        req.K,
		Seed:     req.Seed,
		Variant:  variantWire(req.Variant),
	})
	if err != nil {
		return OpResult{}, err
	}
	resp, err := d.client.Post(d.baseURL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return OpResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		// Admission control refused the solve: a shed, not an error. The
		// collector keeps it out of the latency histogram and counts it
		// toward the shed rate.
		io.Copy(io.Discard, resp.Body)
		return OpResult{Shed: true}, nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return OpResult{}, fmt.Errorf("kwbench: serve returned %d: %s", resp.StatusCode, msg)
	}
	var sr graphio.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return OpResult{}, err
	}
	return OpResult{Size: sr.Size, Cached: sr.Cached}, nil
}

// doMutate toggles one edge of the op's graph through the serve mutation
// API. The per-graph mutex is held across the HTTP call so concurrent
// mutate ops against one graph apply in a consistent toggle order; mutate
// ops are never shed (admission control gates solves only), so a non-200
// here is a real error.
func (d *httpDriver) doMutate(req Request) (OpResult, error) {
	m := d.mutators[req.Graph]
	m.mu.Lock()
	defer m.mu.Unlock()
	idx := int(req.Seed % int64(len(m.edges)))
	if idx < 0 {
		idx += len(m.edges)
	}
	e := m.edges[idx]
	op := graphio.OpRemoveEdge
	if m.off[idx] {
		op = graphio.OpAddEdge
	}
	body, err := json.Marshal(graphio.MutateRequest{
		Mutations: []graphio.Mutation{{Op: op, U: e[0], V: e[1]}},
	})
	if err != nil {
		return OpResult{}, err
	}
	u := d.baseURL + "/v1/graphs/" + url.PathEscape(d.graphs[req.Graph].Name) + "/mutate"
	resp, err := d.client.Post(u, "application/json", bytes.NewReader(body))
	if err != nil {
		return OpResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return OpResult{}, fmt.Errorf("kwbench: mutate returned %d: %s", resp.StatusCode, msg)
	}
	io.Copy(io.Discard, resp.Body)
	m.off[idx] = !m.off[idx]
	return OpResult{}, nil
}

// MarkWarm snapshots the cache counters at the warmup/measure boundary;
// Stats then reports measured-phase activity only.
func (d *httpDriver) MarkWarm() {
	if d.srv != nil {
		_, d.hits0, d.misses0 = d.srv.Stats()
	}
}

// Stats exposes the spawned server's cache counters since the last
// MarkWarm (zero when remote).
func (d *httpDriver) Stats() (hits, misses int64) {
	if d.srv == nil {
		return 0, 0
	}
	_, hits, misses = d.srv.Stats()
	return hits - d.hits0, misses - d.misses0
}

func (d *httpDriver) Close() error {
	if d.ts != nil {
		d.ts.Close()
	}
	if d.client != nil {
		d.client.CloseIdleConnections()
	}
	return nil
}

// variantWire maps the spec's variant to the wire default convention.
func variantWire(v string) string {
	if v == "ln" {
		return "" // the wire default
	}
	return v
}
