package kwbench

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func smokeClosed() *Scenario {
	return &Scenario{
		Name:   "test-closed",
		Driver: DriverInprocFast,
		Graphs: []GraphSpec{{Gen: "udg:200:0.15:1", Name: "udg-200"}, {Gen: "gnp:150:0.04:2", Name: "gnp-150"}},
		Closed: &ClosedLoop{Concurrency: 3, Ops: 24},
		Seeds:  4,
	}
}

func checkCommon(t *testing.T, res *ScenarioResult, wantOps int) {
	t.Helper()
	if res.Ops != wantOps {
		t.Errorf("ops = %d, want %d", res.Ops, wantOps)
	}
	if res.ElapsedSec <= 0 || res.OpsPerSec <= 0 {
		t.Errorf("degenerate timing: %+v", res)
	}
	l := res.Latency
	if !(l.Min <= l.P50 && l.P50 <= l.P99 && l.P999 <= l.Max) {
		t.Errorf("bad percentiles: %+v", l)
	}
	if l.Max <= 0 {
		t.Errorf("zero max latency")
	}
	if res.AllocsPerOp < 0 {
		t.Errorf("negative allocs/op")
	}
}

func TestRunClosedInproc(t *testing.T) {
	sc := smokeClosed()
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkCommon(t, res, 24)
	if res.Loop != "closed" || res.Concurrency != 3 {
		t.Errorf("loop metadata: %+v", res)
	}
	if len(res.Graphs) != 2 || res.Graphs[0].Name != "udg-200" || res.Graphs[0].N != 200 {
		t.Errorf("graph info: %+v", res.Graphs)
	}
}

func TestRunClosedWarmupCountsSeparately(t *testing.T) {
	sc := smokeClosed()
	sc.WarmupOps = 6
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkCommon(t, res, 24) // warmup ops are extra, not carved out
	if res.WarmupOps != 6 {
		t.Errorf("warmup_ops = %d", res.WarmupOps)
	}
}

func TestRunOpenLoop(t *testing.T) {
	sc := &Scenario{
		Name:   "test-open",
		Driver: DriverInprocFast,
		Graphs: []GraphSpec{{Gen: "udg:200:0.15:1"}},
		Open:   &OpenLoop{Rate: 300, DurationSec: 0.3, MaxInflight: 16},
		Seeds:  3,
	}
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loop != "open" || res.TargetRate != 300 {
		t.Errorf("open metadata: %+v", res)
	}
	if res.Ops < 10 {
		t.Errorf("open loop dispatched only %d ops", res.Ops)
	}
	if res.AchievedRate <= 0 {
		t.Errorf("achieved rate = %v", res.AchievedRate)
	}
	checkCommon(t, res, res.Ops)
}

func TestRunHTTPServeDriver(t *testing.T) {
	sc := &Scenario{
		Name:      "test-http",
		Driver:    DriverHTTPServe,
		Graphs:    []GraphSpec{{Gen: "udg:200:0.15:1", Name: "u"}},
		Closed:    &ClosedLoop{Concurrency: 4, Ops: 40},
		WarmupOps: 4,
		Seeds:     1,
		HTTP:      &HTTPSpec{Workers: 2},
	}
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkCommon(t, res, 40)
	if res.HitRate == nil {
		t.Fatal("http-serve spawned driver must report a hit rate")
	}
	// One seed + warmup, and the hit rate covers the *measured* phase
	// only (warmup misses are excluded at the MarkWarm boundary): every
	// measured request is a cache hit.
	if *res.HitRate != 1 {
		t.Errorf("hit rate = %v, want exactly 1 (measured phase is cache-resident)", *res.HitRate)
	}
	if res.ColdMS <= 0 {
		t.Errorf("cold_ms = %v, want > 0 (first warmup request is timed)", res.ColdMS)
	}
}

// TestRunFailsFastOnError checks that an operation error aborts the run
// promptly instead of burning the remaining schedule: a remote http-serve
// target that refuses connections must fail the scenario, not hang or
// finish 10k ops.
func TestRunFailsFastOnError(t *testing.T) {
	sc := &Scenario{
		Name:   "test-dead-target",
		Driver: DriverHTTPServe,
		Graphs: []GraphSpec{{Gen: "udg:50:0.3:1", Name: "u"}},
		Closed: &ClosedLoop{Concurrency: 2, Ops: 10000},
		HTTP:   &HTTPSpec{URL: "http://127.0.0.1:1", TimeoutSec: 2},
	}
	start := time.Now()
	_, err := Run(sc, RunOptions{})
	if err == nil {
		t.Fatal("dead target did not fail the run")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("failure took %v — not failing fast", elapsed)
	}
}

func TestRunCrossCheck(t *testing.T) {
	sc := &Scenario{
		Name:       "test-crosscheck",
		Driver:     DriverInprocFast,
		CrossCheck: true,
		Graphs:     []GraphSpec{{Gen: "udg:120:0.2:1"}},
		Matrix:     Matrix{Algos: []string{"kw", "kw2"}, Variants: []string{"ln", "ln-lnln"}},
		Closed:     &ClosedLoop{Concurrency: 2, Ops: 8},
		Seeds:      4,
	}
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossChecked != 8 {
		t.Errorf("cross_checked = %d, want 8", res.CrossChecked)
	}
	if res.Mismatches != 0 {
		t.Errorf("mismatches = %d (bit-identical contract broken)", res.Mismatches)
	}
}

func TestRunMobilityReplay(t *testing.T) {
	sc := &Scenario{
		Name:      "test-mobility",
		Driver:    DriverInprocFast,
		WarmupOps: 1,
		Mobility:  &MobilitySpec{N: 150, Radius: 0.15, Speed: 0.02, Epochs: 5, Seed: 3},
	}
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loop != "replay" {
		t.Fatalf("loop = %q", res.Loop)
	}
	checkCommon(t, res, 4) // 5 epochs − 1 warmup, one combo
	m := res.Mobility
	if m == nil || m.Epochs != 5 {
		t.Fatalf("mobility block: %+v", m)
	}
	// A moving topology re-elects: with speed 0.02 some churn must occur
	// across 4 transitions, and edge churn must be in (0, 1).
	if m.MeanAdded+m.MeanRemoved == 0 {
		t.Errorf("no set churn over a moving trace: %+v", m)
	}
	if m.MeanEdgeChurn <= 0 || m.MeanEdgeChurn >= 1 {
		t.Errorf("edge churn = %v, want (0, 1)", m.MeanEdgeChurn)
	}
}

// TestRunMobilityDynamicModes drives the rebuild and churn epoch-op modes
// over the same trace with cross-checking on: every epoch's dominating set
// is re-derived on the sim backend and compared, so the run itself proves
// the mutation-API path produces the sets a from-scratch pipeline would.
func TestRunMobilityDynamicModes(t *testing.T) {
	base := func(mode string) *Scenario {
		return &Scenario{
			Name:       "test-mobility-" + mode,
			Driver:     DriverInprocFast,
			WarmupOps:  1,
			CrossCheck: true,
			Mobility:   &MobilitySpec{N: 300, Radius: 0.1, Speed: 0.01, Epochs: 6, Seed: 3, Mode: mode},
		}
	}
	rebuild, err := Run(base(MobilityRebuild), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	churn, err := Run(base(MobilityChurn), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*ScenarioResult{rebuild, churn} {
		checkCommon(t, res, 5) // 6 epochs − 1 warmup, one combo
		if res.Loop != "replay" || res.Mobility == nil {
			t.Fatalf("metadata: %+v", res)
		}
		if res.CrossChecked != 6 || res.Mismatches != 0 {
			t.Fatalf("cross-check %d/%d", res.Mismatches, res.CrossChecked)
		}
		if res.ColdMS <= 0 {
			t.Errorf("missing cold epoch latency")
		}
	}
	if rebuild.Mobility.Mode != MobilityRebuild || churn.Mobility.Mode != MobilityChurn {
		t.Fatalf("modes: %q / %q", rebuild.Mobility.Mode, churn.Mobility.Mode)
	}
	m := churn.Mobility
	if m.MeanEdgeDeltas <= 0 || m.MeanCommitMS <= 0 {
		t.Errorf("churn accounting missing: %+v", m)
	}
	// Same trace, same pipeline: the two modes must elect identically
	// (their per-epoch sizes are both pinned to the sim backend above),
	// and see the same topology motion.
	if rebuild.Mobility.MeanEdgeChurn != churn.Mobility.MeanEdgeChurn {
		t.Errorf("edge churn differs: %v vs %v", rebuild.Mobility.MeanEdgeChurn, churn.Mobility.MeanEdgeChurn)
	}
	if rebuild.Mobility.MeanAdded != churn.Mobility.MeanAdded ||
		rebuild.Mobility.MeanRemoved != churn.Mobility.MeanRemoved {
		t.Errorf("set churn differs between modes: %+v vs %+v", rebuild.Mobility, churn.Mobility)
	}
}

func TestRunQuickShrinksLoad(t *testing.T) {
	sc := smokeClosed()
	sc.Closed.Ops = 200
	res, err := Run(sc, RunOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 20 {
		t.Errorf("quick ops = %d, want 200/10", res.Ops)
	}
}

// TestRequestScheduleDeterministic pins the workload-construction contract:
// the same spec yields the identical operation stream.
func TestRequestScheduleDeterministic(t *testing.T) {
	sc := smokeClosed()
	sc.Select = "zipfian"
	sc.Theta = 1.4
	a := buildRequests(sc, 2, 50)
	b := buildRequests(sc, 2, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Zipfian selection must actually skew toward graph 0.
	count0 := 0
	for _, r := range a {
		if r.Graph == 0 {
			count0++
		}
	}
	if count0 <= len(a)/2 {
		t.Errorf("zipfian skew missing: graph 0 chosen %d/%d", count0, len(a))
	}
}

// TestRunScenarioFilesSmoke runs the two CI smoke scenarios end to end in
// quick mode — the same pair the CI bench job executes via kwmds bench.
func TestRunScenarioFilesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, f := range []string{"smoke-closed.json", "smoke-open.json"} {
		sc, err := Load(filepath.Join("..", "..", "scenarios", f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		res, err := Run(sc, RunOptions{Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if res.Ops < 1 || res.OpsPerSec <= 0 {
			t.Errorf("%s: degenerate result %+v", f, res)
		}
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	sc := smokeClosed()
	sc.Driver = "bogus"
	if _, err := Run(sc, RunOptions{}); err == nil || !strings.Contains(err.Error(), "unknown driver") {
		t.Fatalf("Run accepted an invalid spec: %v", err)
	}
}
