package kwbench

import (
	"strings"
	"testing"
)

// TestRunReorderSched runs the memory-locality knobs end to end: a reordered
// closed loop under both scheduler modes, with the per-op sim cross-check on
// — the harness-level enforcement that relabeling and scheduling never change
// an output.
func TestRunReorderSched(t *testing.T) {
	for _, sched := range []string{"steal", "fixed"} {
		sc := &Scenario{
			Name:       "test-reorder-" + sched,
			Driver:     DriverInprocFast,
			Graphs:     []GraphSpec{{Gen: "ba:300:3:9", Name: "ba-300"}},
			Matrix:     Matrix{Algos: []string{"kw", "kw2"}},
			Closed:     &ClosedLoop{Concurrency: 2, Ops: 16},
			Seeds:      4,
			Reorder:    true,
			Sched:      sched,
			CrossCheck: true,
		}
		res, err := Run(sc, RunOptions{})
		if err != nil {
			t.Fatalf("sched=%s: %v", sched, err)
		}
		checkCommon(t, res, 16)
		if res.CrossChecked != 16 || res.Mismatches != 0 {
			t.Errorf("sched=%s: cross-checked %d with %d mismatches", sched, res.CrossChecked, res.Mismatches)
		}
	}
}

func TestReorderSchedSpecValidation(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Name:   "v",
			Driver: DriverInprocFast,
			Graphs: []GraphSpec{{Gen: "ba:100:2:1"}},
			Closed: &ClosedLoop{Concurrency: 1, Ops: 4},
		}
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"bad sched", func(sc *Scenario) { sc.Sched = "guided" }, "unknown sched"},
		{"sched on sim driver", func(sc *Scenario) { sc.Driver = DriverInprocSim; sc.Sched = "fixed" }, "require the inproc-fast driver"},
		{"reorder on http driver", func(sc *Scenario) { sc.Driver = DriverHTTPServe; sc.Reorder = true }, "require the inproc-fast driver"},
		{"reorder with shards", func(sc *Scenario) { sc.Reorder = true; sc.Shards = []int{2} }, "mutually exclusive"},
		{"reorder with kwcds", func(sc *Scenario) { sc.Reorder = true; sc.Matrix.Algos = []string{"kwcds"} }, "kw|kw2|frac"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base()
			tc.mut(sc)
			err := sc.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not mention %q", err, tc.want)
			}
		})
	}
	good := base()
	good.Reorder, good.Sched = true, "steal"
	if err := good.Validate(); err != nil {
		t.Fatalf("valid reorder+steal spec rejected: %v", err)
	}
}
