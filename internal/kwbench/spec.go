// Package kwbench is the scenario-driven workload and benchmark subsystem
// behind `kwmds bench`: declarative scenario specs (JSON or TOML files,
// conventionally under scenarios/) describe a graph set, a pipeline
// configuration matrix, a driver and a load shape; the runner executes the
// scenario through warmup and measure phases and exports latency
// percentiles, throughput and allocation counts into the unified
// BENCH_kwbench.json. It replaces the bespoke servebench/solvebench mains
// with one harness whose knobs compose: every driver accepts every loop
// mode, graph selection and matrix.
//
// See docs/BENCHMARKS.md for the methodology and the scenario file format.
package kwbench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"kwmds"
)

// MaxOpenOps caps an open-loop scenario's planned operation count
// (rate × duration): the dispatch schedule is precomputed, so the cap
// bounds the runner's memory.
const MaxOpenOps = 1_000_000

// Driver names.
const (
	// DriverInprocFast runs each operation through the facade's fastpath
	// backend (Options.Sequential) in-process — the cold-solve compute path.
	DriverInprocFast = "inproc-fast"
	// DriverInprocSim runs each operation through the message-passing
	// simulation in-process — the only driver whose operations carry
	// rounds/messages/bits accounting.
	DriverInprocSim = "inproc-sim"
	// DriverHTTPServe drives POST /v1/solve against a serve instance:
	// an in-process spawned server by default, or a remote one when the
	// scenario names a URL. The full stack — HTTP, JSON codec, worker
	// pool, LRU — is on the measured path.
	DriverHTTPServe = "http-serve"
)

// Scenario is the declarative description of one benchmark run. Exactly one
// loop mode (Closed or Open) must be set, except for mobility scenarios,
// which replay a trace epoch by epoch and take no loop spec.
type Scenario struct {
	// Name identifies the scenario in reports; results merged into
	// BENCH_kwbench.json replace earlier results with the same name.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Driver is one of inproc-fast | inproc-sim | http-serve.
	Driver string `json:"driver"`
	// Graphs is the preloaded set operations select from. Empty is valid
	// only for mobility scenarios (they generate their own snapshots).
	Graphs []GraphSpec `json:"graphs,omitempty"`
	// Select picks how operations choose a graph from the set:
	// "uniform" (default) or "zipfian" (rank-skewed toward the first
	// graphs, YCSB-style).
	Select string `json:"select,omitempty"`
	// Theta is the zipfian skew s > 1 (default 1.1); ignored for uniform.
	Theta float64 `json:"theta,omitempty"`
	// SelectSeed seeds the graph-selection (and mix-draw) stream, making
	// the request schedule a pure function of the spec. nil selects the
	// default of 1; an explicit 0 is rejected at validation — it used to be
	// silently coerced to 1, so seeds 0 and 1 produced identical schedules.
	SelectSeed *int64 `json:"select_seed,omitempty"`

	// Mix, when set, makes the workload a mixed-operation one: each
	// operation's kind (cached_solve | cold_solve | mutate | batch_solve)
	// is drawn from these weights using the scenario's seeded selection
	// stream, so the kind sequence is as deterministic as the graph
	// choices. nil keeps the legacy single-shape workload (every op a
	// cached_solve).
	Mix *MixSpec `json:"mix,omitempty"`

	// Tenants > 1 splits the workload into that many tenant loops sharing
	// one backend (for http-serve: one spawned server's LRU and worker
	// pool). Operation i belongs to tenant i mod Tenants, and each tenant
	// rotates through its own disjoint seed window, so tenants contend in
	// the shared cache with distinct working sets. Results carry per-tenant
	// latency rows.
	Tenants int `json:"tenants,omitempty"`

	// SLO, when set, turns the scenario into a regression gate: after the
	// run, the measured percentiles and error/shed rates are checked
	// against these bounds and any violation makes `kwmds bench` exit
	// non-zero (the report is still written first, so the offending
	// numbers are inspectable).
	SLO *SLOSpec `json:"slo,omitempty"`

	// Matrix is the pipeline configuration grid; operations cycle through
	// its cross product.
	Matrix Matrix `json:"matrix,omitempty"`

	// Closed configures closed-loop load: a fixed worker count, each
	// issuing the next operation as soon as its previous one returns.
	Closed *ClosedLoop `json:"closed,omitempty"`
	// Open configures open-loop load: operations dispatched at a target
	// rate regardless of completions; latency is measured from the
	// *scheduled* start, so queueing delay is charged to the operation
	// (no coordinated omission).
	Open *OpenLoop `json:"open,omitempty"`

	// WarmupOps are untimed operations run before measurement starts
	// (cache population, pool priming, JIT-ish effects).
	WarmupOps int `json:"warmup_ops,omitempty"`
	// Seeds is the number of distinct rounding seeds operations rotate
	// through (default 1). Against a serve driver, 1 makes the measured
	// phase cache-resident once warmed; a large value makes every
	// operation a fresh computation.
	Seeds int `json:"seeds,omitempty"`

	// CrossCheck re-runs every measured operation on the *other* inproc
	// backend (fast↔sim) and compares dominating-set sizes; any mismatch
	// fails the scenario. The verification pass runs after the measure
	// phase completes, outside the latency, throughput and allocation
	// windows.
	CrossCheck bool `json:"cross_check,omitempty"`

	// Mobility switches the scenario to a dynamic-graph replay: a
	// random-walk trace is generated and the pipeline re-solves every
	// epoch, recording per-epoch latency and set/edge churn.
	Mobility *MobilitySpec `json:"mobility,omitempty"`

	// BatchSize > 1 switches the closed loop to batched operations: each
	// worker claims BatchSize consecutive requests and runs them through
	// one DominatingSetMany call (the SolveMany amortization path).
	// Per-operation latency is the batch total divided evenly. Requires
	// the inproc-fast driver, a closed loop, and kw|kw2 algos only;
	// cross_check still verifies every operation against the other
	// backend solo — batch outputs are bit-identical by contract.
	BatchSize int `json:"batch_size,omitempty"`

	// Load switches the scenario to a format comparison: one graph is
	// materialized and written as edge-list text and as a kwcsr binary
	// container, then timed loads of both measure the zero-parse win. No
	// loop mode, graphs list or matrix applies.
	Load *LoadSpec `json:"load,omitempty"`

	// Recovery switches the scenario to a durability benchmark: a
	// random-walk churn history is committed through a WAL-backed dyngraph
	// engine (one synced append per epoch — the `serve -data-dir` write
	// path), then the store is reopened Restarts times and each timed op
	// is one full crash recovery (snapshot mmap + log replay), verified
	// against the driven state. No loop mode or graphs list applies; the
	// matrix must name exactly one kw|kw2 combo (the verification solve).
	Recovery *RecoverySpec `json:"recovery,omitempty"`

	// Shards, when non-empty, sweeps the partitioned engine: the closed
	// loop runs once per listed shard count (same precomputed request
	// schedule every arm). With the inproc-fast driver each graph is
	// partitioned once and kw/kw2 operations solve through the sharded
	// engine; with the http-serve driver the spawned server is sized with
	// server.Config.Shards. The last count populates the scenario's main
	// result block and every arm lands in the report's shard_sweep rows —
	// outputs are bit-identical across counts by the engine contract, which
	// cross_check verifies against the unsharded (1-shard) path.
	Shards []int `json:"shards,omitempty"`

	// HTTP tunes the http-serve driver; nil selects a spawned in-process
	// server with default sizing.
	HTTP *HTTPSpec `json:"http,omitempty"`

	// Reorder runs every operation over a degree-ordered relabeling of its
	// graph (kwmds.Reorder), built once per graph before the loop. Outputs
	// are bit-identical by the engine contract — cross_check verifies that —
	// so the knob isolates the locality win on skewed-degree graphs.
	// Requires the inproc-fast driver and kw|kw2|frac algos; incompatible
	// with shards and mobility.
	Reorder bool `json:"reorder,omitempty"`
	// Sched selects the fastpath phase scheduler: "" or "steal" is the
	// guided self-scheduling chunk queue (the engine default), "fixed"
	// forces the one-chunk-per-worker equal split — the control arm for
	// measuring what stealing buys on skewed graphs. inproc-fast only.
	Sched string `json:"sched,omitempty"`
}

// LoadSpec parameterizes a format-comparison scenario. Exactly one of Tier
// and Gen selects the graph.
type LoadSpec struct {
	Tier string `json:"tier,omitempty"`
	Gen  string `json:"gen,omitempty"`
	// Ops is the number of timed binary-container loads (the measured
	// operations of the scenario).
	Ops int `json:"ops"`
	// TextOps is the number of timed edge-list parses the binary loads are
	// compared against (default 1 — text parsing of large graphs is slow,
	// which is the point).
	TextOps int `json:"text_ops,omitempty"`
}

// GraphSpec names one graph of the scenario's preloaded set. Exactly one
// source — Gen, File or Tier — must be set.
type GraphSpec struct {
	// Name is the graph's identity in reports and graph_ref requests
	// (default: the gen spec / tier name / file base name).
	Name string `json:"name,omitempty"`
	// Gen is a generator family spec: udg:n:radius:seed, gnp:n:p:seed,
	// grid:rows:cols, tree:n:seed or ba:n:m:seed (the grammar of
	// gen.FromSpec).
	Gen string `json:"gen,omitempty"`
	// File is an edge-list path.
	File string `json:"file,omitempty"`
	// Tier names one of the canonical size tiers (see Tiers).
	Tier string `json:"tier,omitempty"`
}

// Matrix is the cross product of pipeline configurations a scenario sweeps.
type Matrix struct {
	// Algos: kw | kw2 | kwcds | frac (default [kw]).
	Algos []string `json:"algos,omitempty"`
	// Variants: ln | ln-lnln (default [ln]).
	Variants []string `json:"variants,omitempty"`
	// Ks are trade-off parameters (default [3]; 0 selects k = log ∆).
	Ks []int `json:"ks,omitempty"`
}

// ClosedLoop is fixed-concurrency load.
type ClosedLoop struct {
	// Concurrency is the number of workers issuing operations back to back.
	Concurrency int `json:"concurrency"`
	// Ops is the number of measured operations across all workers.
	Ops int `json:"ops"`
}

// Arrival-rate curves for the open loop.
const (
	// CurveConstant dispatches at the flat target rate (the default).
	CurveConstant = "constant"
	// CurveFlash is a flash crowd: the rate jumps to Rate × PeakFactor
	// inside a window of the measured duration and is Rate elsewhere.
	CurveFlash = "flash"
	// CurveDiurnal is a smooth day/night cycle: the rate follows a raised
	// cosine between Rate and Rate × PeakFactor, completing Cycles full
	// periods over the duration.
	CurveDiurnal = "diurnal"
)

// OpenLoop is target-rate load.
type OpenLoop struct {
	// Rate is the dispatch rate in operations per second (for shaped
	// curves, the baseline/trough rate).
	Rate float64 `json:"rate"`
	// DurationSec is the measured window length.
	DurationSec float64 `json:"duration_sec"`
	// MaxInflight bounds concurrently outstanding operations (default
	// 256). When the bound is hit the dispatcher blocks and the wait is
	// charged to the queued operations' latency.
	MaxInflight int `json:"max_inflight,omitempty"`

	// Curve shapes the arrival rate over the window: "" or "constant"
	// (flat), "flash" (a burst window at Rate × PeakFactor) or "diurnal"
	// (raised-cosine cycles between Rate and Rate × PeakFactor). Dispatch
	// ticks are derived deterministically from the curve, so a shaped
	// schedule is as reproducible as a constant one.
	Curve string `json:"curve,omitempty"`
	// PeakFactor is the peak-to-baseline rate ratio of a shaped curve
	// (≥ 1; default 4 for flash, 2 for diurnal).
	PeakFactor float64 `json:"peak_factor,omitempty"`
	// PeakStartFrac/PeakDurFrac place the flash window as fractions of the
	// duration (defaults 0.4 and 0.2).
	PeakStartFrac float64 `json:"peak_start_frac,omitempty"`
	PeakDurFrac   float64 `json:"peak_dur_frac,omitempty"`
	// Cycles is the number of diurnal periods over the window (default 1).
	Cycles int `json:"cycles,omitempty"`
}

// Mobility replay modes.
const (
	// MobilityReplay is the pre-dyngraph behavior: snapshots are built
	// outside the timed loop and each epoch's op is one solve. It
	// under-charges a rebuild-based pipeline (the CSR reconstruction is
	// real per-epoch work) but is kept for trend continuity.
	MobilityReplay = "replay"
	// MobilityRebuild charges the full epoch processing a rebuild-based
	// pipeline performs: each op builds the epoch's unit-disk CSR from the
	// node positions and cold-solves it through the facade.
	MobilityRebuild = "rebuild"
	// MobilityChurn replays the epoch's link events through the dyngraph
	// mutation API instead of rebuilding: each op applies the edge deltas,
	// commits, and re-solves incrementally via fastpath.Resolve
	// (bit-identical to a cold solve; falls back internally above the
	// churn threshold).
	MobilityChurn = "churn"
)

// MobilitySpec parameterizes the dynamic-graph replay (internal/mobility's
// bounded random walk).
type MobilitySpec struct {
	N      int     `json:"n"`
	Radius float64 `json:"radius"`
	Speed  float64 `json:"speed"`
	Epochs int     `json:"epochs"`
	Seed   int64   `json:"seed,omitempty"`
	// Mode selects what one epoch's measured op includes: replay (default;
	// solve only, snapshots prebuilt), rebuild (CSR rebuild + cold solve)
	// or churn (mutation-API delta apply + commit + incremental re-solve).
	// The rebuild and churn modes measure the same end-to-end epoch
	// processing, so their latencies are directly comparable.
	Mode string `json:"mode,omitempty"`
}

// RecoverySpec parameterizes a durability scenario: the churn history
// (internal/mobility's bounded random walk, as in mobility scenarios) and
// the recovery measurement.
type RecoverySpec struct {
	N      int     `json:"n"`
	Radius float64 `json:"radius"`
	Speed  float64 `json:"speed"`
	// Epochs is the number of committed WAL records the drive phase
	// produces (every third epoch also carries a weight update).
	Epochs int   `json:"epochs"`
	Seed   int64 `json:"seed,omitempty"`
	// Restarts is the number of timed recovery cycles — the scenario's
	// measured operations (default 3; WarmupOps of them are untimed).
	Restarts int `json:"restarts,omitempty"`
	// SnapshotEveryEpochs forwards the WAL rotation policy. 0 disables
	// mid-drive snapshots, so every recovery replays the whole history —
	// the pure-replay-cost arm; a positive value measures
	// snapshot-anchored recovery with at most that many records to replay.
	SnapshotEveryEpochs int `json:"snapshot_every_epochs,omitempty"`
}

// HTTPSpec tunes the http-serve driver.
type HTTPSpec struct {
	// NoBatch disables the spawned server's same-digest cold-solve
	// batching (server.Config.DisableBatching) — the control arm for
	// measuring the batching win. Ignored for remote targets.
	NoBatch bool `json:"no_batch,omitempty"`
	// URL targets a remote serve instance; "" spawns one in-process. A
	// remote target must already have the scenario's graphs preloaded
	// under their names.
	URL string `json:"url,omitempty"`
	// Workers and CacheEntries size the spawned server (0 = defaults).
	Workers      int `json:"workers,omitempty"`
	CacheEntries int `json:"cache_entries,omitempty"`
	// TimeoutSec bounds each request (default 120 s), so a hung target
	// fails the scenario instead of blocking the benchmark forever.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// MaxQueue bounds the spawned server's admission queue
	// (server.Config.MaxQueue): solve requests beyond Workers running +
	// MaxQueue waiting are shed with 429. 0 leaves admission unbounded.
	// Ignored for remote targets (the remote instance configures its own
	// -max-queue).
	MaxQueue int `json:"max_queue,omitempty"`
	// QueueTimeoutSec bounds how long an admitted request may wait for a
	// worker slot before being shed (server.Config.QueueTimeout). 0
	// disables the timeout. Ignored for remote targets.
	QueueTimeoutSec float64 `json:"queue_timeout_sec,omitempty"`
}

// Tiers are the named canonical graph tiers scenario specs may reference:
// one identity per (family, size) so scenarios across trajectories measure
// the same instance. Where a legacy benchmark workload of the same name
// exists (internal/bench workloads, servebench instances), the parameters
// reproduce it exactly — the gnp-40k/gnp-200k radii are the shortest
// decimal representations of the legacy 8/(n−1) probabilities, which
// strconv.ParseFloat round-trips to the identical float64.
var Tiers = map[string]string{
	"udg-500":  "udg:500:0.08:1",
	"udg-1k":   "udg:1000:0.05:1",
	"udg-2k":   "udg:2000:0.04:106",
	"udg-10k":  "udg:10000:0.02:1",
	"udg-20k":  "udg:20000:0.014:109",
	"udg-100k": "udg:100000:0.0065:109",
	"udg-1m":   "udg:1000000:0.002:111",
	"gnp-500":  "gnp:500:0.012:107",
	"gnp-2k":   "gnp:2000:0.003:107",
	"gnp-40k":  "gnp:40000:0.00020000500012500312:110",
	"gnp-200k": "gnp:200000:4.0000200001000004e-05:110",
	"grid-45":  "grid:45:45",
	"tree-10k": "tree:10000:103",
	"ba-2k":    "ba:2000:4:112",
	"ba-100k":  "ba:100000:4:112",
}

// Load reads, decodes and validates a scenario file. The format follows the
// extension: .toml is decoded with the built-in TOML subset, anything else
// as strict JSON. Unknown fields are rejected in both formats.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("kwbench: %w", err)
	}
	sc, err := Decode(data, strings.EqualFold(filepath.Ext(path), ".toml"))
	if err != nil {
		return nil, fmt.Errorf("kwbench: %s: %w", path, err)
	}
	return sc, nil
}

// Decode parses a scenario from raw bytes (TOML subset when toml is set,
// strict JSON otherwise) and validates it.
func Decode(data []byte, toml bool) (*Scenario, error) {
	if toml {
		doc, err := parseTOML(data)
		if err != nil {
			return nil, err
		}
		// Round-trip through JSON so both formats share one strict,
		// unknown-field-rejecting decode into the spec struct.
		data, err = json.Marshal(doc)
		if err != nil {
			return nil, err
		}
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after JSON body")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// combos expands the matrix cross product in deterministic order.
type combo struct {
	Algo    string
	Variant string
	K       int
}

func (m Matrix) combos() []combo {
	algos, variants, ks := m.Algos, m.Variants, m.Ks
	if len(algos) == 0 {
		algos = []string{"kw"}
	}
	if len(variants) == 0 {
		variants = []string{"ln"}
	}
	if len(ks) == 0 {
		ks = []int{3}
	}
	var cs []combo
	for _, a := range algos {
		for _, v := range variants {
			for _, k := range ks {
				cs = append(cs, combo{a, v, k})
			}
		}
	}
	return cs
}

// Validate checks the scenario for structural consistency and fills no
// defaults (the runner resolves defaults at execution time so a validated
// spec round-trips unchanged).
func (sc *Scenario) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s", sc.Name, fmt.Sprintf(format, args...))
	}
	if sc.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	switch sc.Driver {
	case DriverInprocFast, DriverInprocSim:
	case DriverHTTPServe:
		if sc.Mobility != nil {
			return bad("mobility replay requires an inproc driver (the serve protocol has no epoch identity)")
		}
		if sc.CrossCheck {
			return bad("cross_check requires an inproc driver")
		}
	case "":
		return bad("missing driver (want %s|%s|%s)", DriverInprocFast, DriverInprocSim, DriverHTTPServe)
	default:
		return bad("unknown driver %q (want %s|%s|%s)", sc.Driver, DriverInprocFast, DriverInprocSim, DriverHTTPServe)
	}

	if sc.Load != nil {
		if sc.Mobility != nil {
			return bad("load and mobility are mutually exclusive")
		}
		if sc.Recovery != nil {
			return bad("load and recovery are mutually exclusive")
		}
		if sc.Closed != nil || sc.Open != nil {
			return bad("load scenarios take no loop spec (the timed loads are the operations)")
		}
		if sc.Driver != DriverInprocFast {
			return bad("load scenarios require the %s driver", DriverInprocFast)
		}
		if len(sc.Graphs) > 0 {
			return bad("load scenarios name their graph in the load block; drop the graphs list")
		}
		if sc.BatchSize > 1 || sc.CrossCheck || sc.HTTP != nil || len(sc.Shards) > 0 || sc.Reorder || sc.Sched != "" {
			return bad("load scenarios take no batch_size, cross_check, shards, http, reorder or sched")
		}
		if sc.Mix != nil || sc.SLO != nil || sc.Tenants > 1 {
			return bad("load scenarios take no mix, slo or tenants")
		}
		l := sc.Load
		if (l.Tier == "") == (l.Gen == "") {
			return bad("load: exactly one of tier and gen is required")
		}
		if l.Tier != "" {
			if _, ok := Tiers[l.Tier]; !ok {
				return bad("load: bad tier %q (known: %s)", l.Tier, tierNames())
			}
		}
		if l.Ops < 1 {
			return bad("load needs ops ≥ 1 (got %d)", l.Ops)
		}
		if l.TextOps < 0 {
			return bad("load text_ops must be ≥ 0 (got %d)", l.TextOps)
		}
		return nil
	}
	if sc.Recovery != nil {
		if sc.Mobility != nil {
			return bad("recovery and mobility are mutually exclusive")
		}
		if sc.Closed != nil || sc.Open != nil {
			return bad("recovery scenarios take no loop spec (the timed recoveries are the operations)")
		}
		if sc.Driver != DriverInprocFast {
			return bad("recovery scenarios require the %s driver", DriverInprocFast)
		}
		if len(sc.Graphs) > 0 {
			return bad("recovery scenarios generate their own churn history; drop the graphs list")
		}
		if sc.BatchSize > 1 || sc.CrossCheck || sc.HTTP != nil || len(sc.Shards) > 0 || sc.Reorder || sc.Sched != "" {
			return bad("recovery scenarios take no batch_size, cross_check, shards, http, reorder or sched")
		}
		if sc.Mix != nil || sc.SLO != nil || sc.Tenants > 1 {
			return bad("recovery scenarios take no mix, slo or tenants")
		}
		r := sc.Recovery
		if r.N < 1 || r.Epochs < 1 || r.Radius <= 0 || r.Speed < 0 {
			return bad("bad recovery parameters n=%d radius=%v speed=%v epochs=%d",
				r.N, r.Radius, r.Speed, r.Epochs)
		}
		if r.Restarts < 0 || r.SnapshotEveryEpochs < 0 {
			return bad("recovery restarts and snapshot_every_epochs must be ≥ 0")
		}
		restarts := r.Restarts
		if restarts == 0 {
			restarts = defaultRecoveryRestarts
		}
		if sc.WarmupOps < 0 {
			return bad("warmup_ops must be ≥ 0 (got %d)", sc.WarmupOps)
		}
		if sc.WarmupOps >= restarts {
			return bad("warmup_ops %d consumes every one of the %d restarts", sc.WarmupOps, restarts)
		}
		if len(sc.Matrix.combos()) != 1 {
			return bad("recovery scenarios take exactly one matrix combo (the verification solve)")
		}
		c := sc.Matrix.combos()[0]
		if c.Algo != "kw" && c.Algo != "kw2" {
			return bad("recovery scenarios support algos kw|kw2 (got %q)", c.Algo)
		}
		if c.Variant != "ln" && c.Variant != "ln-lnln" {
			return bad("unknown variant %q (want ln|ln-lnln)", c.Variant)
		}
		if c.K < 0 || c.K > kwmds.MaxK {
			return bad("k %d outside [0, %d]", c.K, kwmds.MaxK)
		}
		return nil
	}

	if sc.BatchSize < 0 {
		return bad("batch_size must be ≥ 0 (got %d)", sc.BatchSize)
	}
	if sc.BatchSize > 1 {
		if sc.Driver != DriverInprocFast {
			return bad("batch_size > 1 requires the %s driver (batching is a fastpath concept)", DriverInprocFast)
		}
		if sc.Mobility != nil {
			return bad("batch_size > 1 does not apply to mobility replays")
		}
		if sc.Closed == nil {
			return bad("batch_size > 1 requires a closed loop")
		}
		for _, c := range sc.Matrix.combos() {
			if c.Algo != "kw" && c.Algo != "kw2" {
				return bad("batch_size > 1 supports algos kw|kw2 (got %q)", c.Algo)
			}
		}
	}

	if sc.Mobility != nil {
		if sc.Closed != nil || sc.Open != nil {
			return bad("mobility replay takes no loop spec (epochs run back to back)")
		}
		if len(sc.Graphs) > 0 {
			return bad("mobility replay generates its own snapshots; drop the graphs list")
		}
		m := sc.Mobility
		if m.N < 1 || m.Epochs < 1 || m.Radius <= 0 || m.Speed < 0 {
			return bad("bad mobility parameters n=%d radius=%v speed=%v epochs=%d",
				m.N, m.Radius, m.Speed, m.Epochs)
		}
		if sc.WarmupOps >= m.Epochs {
			return bad("warmup_ops %d consumes every one of the %d epochs", sc.WarmupOps, m.Epochs)
		}
		switch m.Mode {
		case "", MobilityReplay:
		case MobilityRebuild, MobilityChurn:
			// The dynamic modes measure one unambiguous epoch op, so they
			// take exactly one pipeline configuration, and the churn mode's
			// incremental path exists only for the fastpath dominating-set
			// pipelines.
			if sc.Driver != DriverInprocFast {
				return bad("mobility mode %q requires the %s driver", m.Mode, DriverInprocFast)
			}
			if len(sc.Matrix.combos()) != 1 {
				return bad("mobility mode %q takes exactly one matrix combo", m.Mode)
			}
			if a := sc.Matrix.combos()[0].Algo; a != "kw" && a != "kw2" {
				return bad("mobility mode %q supports algos kw|kw2 (got %q)", m.Mode, a)
			}
			if m.Mode == MobilityChurn && sc.WarmupOps < 1 {
				return bad("mobility mode churn needs warmup_ops ≥ 1 (epoch 0 is the cold load, not a delta op)")
			}
		default:
			return bad("unknown mobility mode %q (want %s|%s|%s)", m.Mode, MobilityReplay, MobilityRebuild, MobilityChurn)
		}
	} else {
		if sc.Closed != nil && sc.Open != nil {
			return bad("conflicting loop modes: exactly one of closed and open")
		}
		if sc.Closed == nil && sc.Open == nil {
			return bad("missing loop mode: exactly one of closed and open")
		}
		if c := sc.Closed; c != nil {
			if c.Concurrency < 1 {
				return bad("closed loop needs concurrency ≥ 1 (got %d)", c.Concurrency)
			}
			if c.Ops < 1 {
				return bad("closed loop needs ops ≥ 1 (got %d)", c.Ops)
			}
		}
		if o := sc.Open; o != nil {
			if !(o.Rate > 0) || math.IsInf(o.Rate, 0) {
				return bad("open loop needs a finite rate > 0 (got %v)", o.Rate)
			}
			if !(o.DurationSec > 0) || math.IsInf(o.DurationSec, 0) {
				return bad("open loop needs a finite duration_sec > 0 (got %v)", o.DurationSec)
			}
			switch o.Curve {
			case "", CurveConstant:
				if o.PeakFactor != 0 || o.PeakStartFrac != 0 || o.PeakDurFrac != 0 || o.Cycles != 0 {
					return bad("open loop curve knobs (peak_factor, peak_start_frac, peak_dur_frac, cycles) require a flash or diurnal curve")
				}
			case CurveFlash:
				if o.Cycles != 0 {
					return bad("open loop cycles applies to the diurnal curve only")
				}
				if o.PeakStartFrac < 0 || o.PeakDurFrac < 0 || o.PeakStartFrac+o.PeakDurFrac > 1 ||
					math.IsNaN(o.PeakStartFrac) || math.IsNaN(o.PeakDurFrac) {
					return bad("flash curve needs peak_start_frac, peak_dur_frac ≥ 0 with their sum ≤ 1 (got %v + %v)",
						o.PeakStartFrac, o.PeakDurFrac)
				}
			case CurveDiurnal:
				if o.PeakStartFrac != 0 || o.PeakDurFrac != 0 {
					return bad("open loop peak_start_frac/peak_dur_frac apply to the flash curve only")
				}
				if o.Cycles < 0 {
					return bad("diurnal curve needs cycles ≥ 0 (got %d)", o.Cycles)
				}
			default:
				return bad("unknown curve %q (want %s|%s|%s)", o.Curve, CurveConstant, CurveFlash, CurveDiurnal)
			}
			if o.Curve != "" && o.Curve != CurveConstant {
				if o.PeakFactor != 0 && !(o.PeakFactor >= 1 && !math.IsInf(o.PeakFactor, 0)) {
					return bad("shaped curves need a finite peak_factor ≥ 1 (got %v)", o.PeakFactor)
				}
			}
			// The runner materializes the whole dispatch schedule up
			// front; bound it here so an over-ambitious spec is rejected
			// at load instead of exhausting memory mid-run. Shaped curves
			// dispatch more than rate × duration ops, so charge the
			// curve's mean rate factor.
			if planned := o.Rate * o.DurationSec * o.meanRateFactor(); planned > MaxOpenOps {
				return bad("open loop schedules %.0f ops (rate × duration × curve factor); the cap is %d", planned, MaxOpenOps)
			}
			if o.MaxInflight < 0 {
				return bad("open loop max_inflight must be ≥ 0 (got %d)", o.MaxInflight)
			}
		}
		if len(sc.Graphs) == 0 {
			return bad("empty graph set")
		}
	}

	names := map[string]bool{}
	for i, g := range sc.Graphs {
		set := 0
		for _, s := range []string{g.Gen, g.File, g.Tier} {
			if s != "" {
				set++
			}
		}
		if set != 1 {
			return bad("graph %d: exactly one of gen, file and tier is required", i)
		}
		if g.Tier != "" {
			if _, ok := Tiers[g.Tier]; !ok {
				return bad("graph %d: bad tier %q (known: %s)", i, g.Tier, tierNames())
			}
		}
		name := g.EffectiveName()
		if names[name] {
			return bad("duplicate graph name %q", name)
		}
		names[name] = true
	}

	switch sc.Select {
	case "", "uniform":
	case "zipfian":
		// NaN fails every comparison, so `<= 1` alone would let it
		// through — and a non-finite skew spins rand.Zipf's rejection
		// loop forever.
		if sc.Theta != 0 && !(sc.Theta > 1 && !math.IsInf(sc.Theta, 0)) {
			return bad("zipfian selection needs a finite theta > 1 (got %v)", sc.Theta)
		}
	default:
		return bad("unknown select %q (want uniform|zipfian)", sc.Select)
	}
	if sc.SelectSeed != nil && *sc.SelectSeed == 0 {
		return bad("select_seed 0 is not a distinct seed (it was silently coerced to the default 1); use a nonzero seed or omit the field")
	}
	if sc.Seeds < 0 {
		return bad("seeds must be ≥ 0 (got %d)", sc.Seeds)
	}
	if sc.WarmupOps < 0 {
		return bad("warmup_ops must be ≥ 0 (got %d)", sc.WarmupOps)
	}

	if sc.Tenants < 0 {
		return bad("tenants must be ≥ 0 (got %d)", sc.Tenants)
	}
	if sc.Tenants > 1 {
		if sc.Mobility != nil {
			return bad("tenants do not apply to mobility replays")
		}
		if sc.BatchSize > 1 {
			return bad("tenants and batch_size > 1 are mutually exclusive (a batch would span tenants)")
		}
		if len(sc.Shards) > 0 {
			return bad("tenants and shard sweeps are mutually exclusive")
		}
	}
	if sc.Mix != nil {
		if err := sc.Mix.validate(); err != nil {
			return bad("%v", err)
		}
		if sc.Mobility != nil {
			return bad("mix does not apply to mobility replays")
		}
		if sc.CrossCheck {
			return bad("mix and cross_check are mutually exclusive (mutate ops have no solo re-solve identity)")
		}
		if sc.BatchSize > 1 {
			return bad("mix and batch_size > 1 are mutually exclusive (batch_solve is the mix's batching arm)")
		}
		if len(sc.Shards) > 0 {
			return bad("mix and shard sweeps are mutually exclusive")
		}
		if sc.Reorder || sc.Sched != "" {
			return bad("mix takes no reorder or sched")
		}
		if sc.Mix.Mutate > 0 {
			if sc.Driver != DriverHTTPServe {
				return bad("mix weight mutate requires the %s driver (mutation rides the serve API)", DriverHTTPServe)
			}
			if sc.HTTP != nil && sc.HTTP.URL != "" {
				return bad("mix weight mutate requires a spawned server (mutating a remote target's graphs is not reversible)")
			}
		}
		if sc.Mix.BatchSolve > 0 {
			if sc.Driver != DriverInprocFast {
				return bad("mix weight batch_solve requires the %s driver (batching is a fastpath concept)", DriverInprocFast)
			}
			for _, c := range sc.Matrix.combos() {
				if c.Algo != "kw" && c.Algo != "kw2" {
					return bad("mix weight batch_solve supports algos kw|kw2 (got %q)", c.Algo)
				}
			}
		}
	}
	if sc.SLO != nil {
		if sc.Mobility != nil {
			return bad("slo gates closed/open loop scenarios; mobility replays take none")
		}
		if err := sc.SLO.validate(); err != nil {
			return bad("%v", err)
		}
	}

	for _, c := range sc.Matrix.combos() {
		switch c.Algo {
		case "kw", "kw2", "kwcds", "frac":
		default:
			return bad("unknown algo %q (want kw|kw2|kwcds|frac)", c.Algo)
		}
		switch c.Variant {
		case "ln", "ln-lnln":
		default:
			return bad("unknown variant %q (want ln|ln-lnln)", c.Variant)
		}
		if c.K < 0 || c.K > kwmds.MaxK {
			return bad("k %d outside [0, %d]", c.K, kwmds.MaxK)
		}
		if sc.CrossCheck && c.Algo == "frac" {
			return bad("cross_check compares dominating-set sizes; algo frac has none")
		}
	}

	if len(sc.Shards) > 0 {
		if sc.Driver == DriverInprocSim {
			return bad("shards requires the %s or %s driver (the simulation has no sharded engine)", DriverInprocFast, DriverHTTPServe)
		}
		if sc.Mobility != nil {
			return bad("shards does not apply to mobility replays")
		}
		if sc.BatchSize > 1 {
			return bad("shards and batch_size > 1 are mutually exclusive (sharding replaces batching on the cold path)")
		}
		if sc.Closed == nil {
			return bad("shards sweeps require a closed loop")
		}
		if sc.HTTP != nil && sc.HTTP.URL != "" {
			return bad("shards sizes the spawned server; a remote target configures its own shard count")
		}
		for _, n := range sc.Shards {
			if n < 1 || n > kwmds.MaxShards {
				return bad("shard count %d outside [1, %d]", n, kwmds.MaxShards)
			}
		}
		for _, c := range sc.Matrix.combos() {
			if c.Algo != "kw" && c.Algo != "kw2" {
				return bad("sharded scenarios support algos kw|kw2 (got %q)", c.Algo)
			}
		}
	}

	switch sc.Sched {
	case "", "steal", "fixed":
	default:
		return bad("unknown sched %q (want steal|fixed)", sc.Sched)
	}
	if sc.Reorder || sc.Sched != "" {
		if sc.Driver != DriverInprocFast {
			return bad("reorder/sched tune the fastpath engine; they require the %s driver", DriverInprocFast)
		}
		if sc.Mobility != nil {
			return bad("reorder/sched do not apply to mobility replays")
		}
	}
	if sc.Reorder {
		if len(sc.Shards) > 0 {
			return bad("reorder and shards are mutually exclusive (the sharded engine is partition-keyed, not relabeling-aware)")
		}
		for _, c := range sc.Matrix.combos() {
			if c.Algo == "kwcds" {
				return bad("reorder supports algos kw|kw2|frac (got %q)", c.Algo)
			}
		}
	}

	if sc.HTTP != nil {
		if sc.Driver != DriverHTTPServe {
			return bad("http block is only valid with the %s driver", DriverHTTPServe)
		}
		if sc.HTTP.TimeoutSec < 0 || math.IsNaN(sc.HTTP.TimeoutSec) || math.IsInf(sc.HTTP.TimeoutSec, 0) {
			return bad("http timeout_sec must be a finite value ≥ 0 (got %v)", sc.HTTP.TimeoutSec)
		}
		if sc.HTTP.MaxQueue < 0 {
			return bad("http max_queue must be ≥ 0 (got %d)", sc.HTTP.MaxQueue)
		}
		if sc.HTTP.QueueTimeoutSec < 0 || math.IsNaN(sc.HTTP.QueueTimeoutSec) || math.IsInf(sc.HTTP.QueueTimeoutSec, 0) {
			return bad("http queue_timeout_sec must be a finite value ≥ 0 (got %v)", sc.HTTP.QueueTimeoutSec)
		}
		if (sc.HTTP.MaxQueue > 0 || sc.HTTP.QueueTimeoutSec > 0) && sc.HTTP.URL != "" {
			return bad("max_queue/queue_timeout_sec size the spawned server; a remote target configures its own admission queue")
		}
	}
	return nil
}

// EffectiveName resolves the graph's report/request name.
func (g GraphSpec) EffectiveName() string {
	if g.Name != "" {
		return g.Name
	}
	if g.Tier != "" {
		return g.Tier
	}
	if g.Gen != "" {
		return g.Gen
	}
	return filepath.Base(g.File)
}

func tierNames() string {
	names := make([]string, 0, len(Tiers))
	for n := range Tiers {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic error messages
	return strings.Join(names, " ")
}
