package kwbench

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseTOMLValues(t *testing.T) {
	doc := `
# full value-type coverage
title = "hello \"world\"\n"
count = 1_000
rate = 2.5
neg = -7
on = true
off = false
list = [1, 2, 3]
mixed = ["a", 1, true]
empty = []
inline = { x = 1, y = "z" }

[table]
nested = 4

[table.sub]
deep = "v"

[[rows]]
id = 1

[[rows]]
id = 2
`
	got, err := parseTOML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"title": "hello \"world\"\n",
		"count": int64(1000),
		"rate":  2.5,
		"neg":   int64(-7),
		"on":    true,
		"off":   false,
		"list":  []any{int64(1), int64(2), int64(3)},
		"mixed": []any{"a", int64(1), true},
		"empty": []any{},
		"inline": map[string]any{
			"x": int64(1), "y": "z",
		},
		"table": map[string]any{
			"nested": int64(4),
			"sub":    map[string]any{"deep": "v"},
		},
		"rows": []any{
			map[string]any{"id": int64(1)},
			map[string]any{"id": int64(2)},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseTOML mismatch:\ngot  %#v\nwant %#v", got, want)
	}
}

func TestParseTOMLDottedKeys(t *testing.T) {
	got, err := parseTOML([]byte("a.b.c = 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{"a": map[string]any{"b": map[string]any{"c": int64(1)}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dotted key mismatch: %#v", got)
	}
}

func TestParseTOMLErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"bare garbage", "what is this", "expected key = value"},
		{"unterminated string", `k = "abc`, "unterminated string"},
		{"unterminated array", "k = [1, 2", "unterminated array"},
		{"unterminated inline", "k = { a = 1", "unterminated inline table"},
		{"duplicate key", "k = 1\nk = 2", "duplicate key"},
		{"bad value", "k = 12xy", "unsupported value"},
		{"literal string", "k = 'abc'", "not supported"},
		{"bad escape", `k = "\q"`, "unsupported escape"},
		{"trailing data", `k = [1] junk`, "trailing data"},
		{"bad table header", "[unclosed\nk = 1", "malformed table header"},
		{"missing value", "k =", "missing value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseTOML([]byte(tc.doc))
			if err == nil {
				t.Fatalf("parseTOML accepted %q", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
			if !strings.Contains(err.Error(), "line") {
				t.Fatalf("error %q lacks a line number", err)
			}
		})
	}
}

func TestParseTOMLCommentsRespectStrings(t *testing.T) {
	got, err := parseTOML([]byte(`k = "a # not a comment" # a comment`))
	if err != nil {
		t.Fatal(err)
	}
	if got["k"] != "a # not a comment" {
		t.Fatalf("got %q", got["k"])
	}
}
