package kwbench

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10; i++ {
		h.Record(time.Duration(i))
	}
	if h.Count() != 10 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.MinMS(); got != 1e-6 {
		t.Errorf("min = %v ns, want 1", got*1e6)
	}
	if got := h.MaxMS(); got != 10e-6 {
		t.Errorf("max = %v ns, want 10", got*1e6)
	}
	// Sub-64ns values land in exact buckets: the median of 1..10 is 5.
	if got := h.Quantile(0.5) * 1e6; got != 5 {
		t.Errorf("p50 = %v ns, want 5", got)
	}
}

// TestHistogramQuantileAccuracy checks the log-linear error bound: every
// quantile must land within ~3.2% (one sub-bucket) of the exact
// order-statistic value.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		// Log-uniform over ~5 decades: 10µs .. 1s.
		d := time.Duration(math.Pow(10, 4+5*rng.Float64()))
		vals[i] = float64(d)
		h.Record(d)
	}
	// Exact order statistics for comparison.
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exactNS := sorted[int(math.Ceil(q*float64(n)))-1]
		gotNS := h.Quantile(q) * 1e6
		if rel := math.Abs(gotNS-exactNS) / exactNS; rel > 0.032 {
			t.Errorf("q=%v: got %.0f ns, exact %.0f ns, rel err %.4f > 0.032", q, gotNS, exactNS, rel)
		}
	}
	if h.MaxMS()*1e6 != sorted[n-1] {
		t.Errorf("max %.0f != exact %.0f", h.MaxMS()*1e6, sorted[n-1])
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	for i := 0; i < 1000; i++ {
		d := time.Duration(i) * time.Microsecond
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
		both.Record(d)
	}
	var merged Histogram
	merged.Merge(&a)
	merged.Merge(&b)
	if merged.Count() != both.Count() {
		t.Fatalf("count %d != %d", merged.Count(), both.Count())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if m, w := merged.Quantile(q), both.Quantile(q); m != w {
			t.Errorf("q=%v: merged %v != direct %v", q, m, w)
		}
	}
	if merged.MinMS() != both.MinMS() || merged.MaxMS() != both.MaxMS() {
		t.Errorf("extrema drift: merged [%v, %v], direct [%v, %v]",
			merged.MinMS(), merged.MaxMS(), both.MinMS(), both.MaxMS())
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.MeanMS() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Record(-time.Second) // clamped to 0
	if h.MinMS() != 0 || h.MaxMS() != 0 || h.Count() != 1 {
		t.Errorf("negative record mishandled: %+v", h)
	}
}

func TestHistogramSummaryMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	for i := 0; i < 5000; i++ {
		h.Record(time.Duration(rng.Int63n(int64(3 * time.Second))))
	}
	s := h.Summary()
	if !(s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.P999 && s.P999 <= s.Max) {
		t.Fatalf("non-monotonic summary: %+v", s)
	}
}
