package kwbench

import (
	"path/filepath"
	"strings"
	"testing"
)

func smokeRecovery() *Scenario {
	return &Scenario{
		Name:     "test-recovery",
		Driver:   DriverInprocFast,
		Matrix:   Matrix{Algos: []string{"kw2"}},
		Recovery: &RecoverySpec{N: 120, Radius: 0.15, Speed: 0.04, Epochs: 6, Seed: 3, Restarts: 3},
	}
}

func TestValidateBadRecoverySpecs(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		wantErr string
	}{
		{"loop spec", func(s *Scenario) { s.Closed = &ClosedLoop{Concurrency: 1, Ops: 1} }, "no loop spec"},
		{"graphs list", func(s *Scenario) { s.Graphs = []GraphSpec{{Gen: "udg:100:0.2:1"}} }, "drop the graphs list"},
		{"sim driver", func(s *Scenario) { s.Driver = DriverInprocSim }, "require the inproc-fast driver"},
		{"mobility too", func(s *Scenario) {
			s.Mobility = &MobilitySpec{N: 10, Radius: 0.3, Epochs: 2}
		}, "recovery and mobility are mutually exclusive"},
		{"load too", func(s *Scenario) {
			s.Recovery = nil
			s.Load = &LoadSpec{Gen: "udg:100:0.2:1", Ops: 1}
			s.Recovery = smokeRecovery().Recovery
		}, "load and recovery are mutually exclusive"},
		{"frac algo", func(s *Scenario) { s.Matrix.Algos = []string{"frac"} }, "algos kw|kw2"},
		{"two combos", func(s *Scenario) { s.Matrix.Algos = []string{"kw", "kw2"} }, "exactly one matrix combo"},
		{"cross check", func(s *Scenario) { s.CrossCheck = true }, "no batch_size, cross_check"},
		{"shards", func(s *Scenario) { s.Shards = []int{2} }, "no batch_size, cross_check, shards"},
		{"zero epochs", func(s *Scenario) { s.Recovery.Epochs = 0 }, "bad recovery parameters"},
		{"zero n", func(s *Scenario) { s.Recovery.N = 0 }, "bad recovery parameters"},
		{"negative restarts", func(s *Scenario) { s.Recovery.Restarts = -1 }, "must be ≥ 0"},
		{"warmup eats restarts", func(s *Scenario) { s.WarmupOps = 3 }, "consumes every one"},
		{"warmup eats default restarts", func(s *Scenario) {
			s.Recovery.Restarts = 0
			s.WarmupOps = 3
		}, "consumes every one"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := smokeRecovery()
			tc.mutate(sc)
			err := sc.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestRunRecovery(t *testing.T) {
	sc := smokeRecovery()
	sc.WarmupOps = 1
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkCommon(t, res, 2) // 3 restarts, 1 warmup
	if res.Loop != "recovery" {
		t.Errorf("loop = %q, want recovery", res.Loop)
	}
	r := res.Recovery
	if r == nil {
		t.Fatal("no recovery block")
	}
	if r.Epochs != 6 || r.Restarts != 3 {
		t.Errorf("recovery counts: %+v", *r)
	}
	// No snapshot policy: every restart replays the whole history from the
	// epoch-0 snapshot.
	if r.SnapshotEpoch != 0 || r.ReplayedEpochs != 6 {
		t.Errorf("replay accounting: %+v", *r)
	}
	if r.RecoveryMS <= 0 || r.WALBytes <= 0 || r.SnapshotBytes <= 0 || r.AppendMS <= 0 {
		t.Errorf("degenerate recovery block: %+v", *r)
	}
	if r.MeanEdgeDeltas <= 0 {
		t.Errorf("no edge churn measured: %+v", *r)
	}
	if res.ColdMS <= 0 {
		t.Errorf("warmup restart did not set cold_ms: %+v", res)
	}

	// The result must survive the report schema gate.
	rep := &Report{
		Schema:      SchemaVersion,
		Description: "test",
		Environment: CurrentEnvironment(),
		Scenarios:   []ScenarioResult{*res},
	}
	if err := ValidateReport(rep); err != nil {
		t.Fatalf("recovery result fails report validation: %v", err)
	}
}

func TestRunRecoveryWithSnapshots(t *testing.T) {
	sc := smokeRecovery()
	sc.Recovery.Epochs = 9
	sc.Recovery.SnapshotEveryEpochs = 4
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Recovery
	// Rotations at epochs 4 and 8 leave a snapshot at 8 with one record on
	// top — recovery replays the tail, not the history.
	if r.SnapshotEpoch != 8 || r.ReplayedEpochs != 1 {
		t.Errorf("snapshot-anchored recovery accounting: %+v", *r)
	}
}

func TestRecoveryScenarioFiles(t *testing.T) {
	for _, f := range []string{"recovery-udg10k.toml", "recovery-smoke.toml"} {
		sc, err := Load(filepath.Join("..", "..", "scenarios", f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if sc.Recovery == nil {
			t.Fatalf("%s: not a recovery scenario", f)
		}
	}
	if testing.Short() {
		t.Skip("short mode: scenario execution")
	}
	sc, err := Load(filepath.Join("..", "..", "scenarios", "recovery-smoke.toml"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, RunOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery == nil || res.Recovery.RecoveryMS <= 0 {
		t.Fatalf("degenerate smoke result: %+v", res)
	}
}
