package kwbench

import (
	"strings"
	"testing"
)

// TestRunShardSweepInproc runs a shards sweep on the inproc-fast driver with
// cross-checking: every sharded arm's operations are re-solved on the
// unsharded path and compared, so the run itself proves the shard count
// never affects output.
func TestRunShardSweepInproc(t *testing.T) {
	sc := &Scenario{
		Name:       "test-shard-sweep",
		Driver:     DriverInprocFast,
		CrossCheck: true,
		Graphs:     []GraphSpec{{Gen: "udg:300:0.12:1", Name: "u"}, {Gen: "gnp:250:0.03:2", Name: "g"}},
		Matrix:     Matrix{Algos: []string{"kw", "kw2"}},
		Closed:     &ClosedLoop{Concurrency: 2, Ops: 16},
		Shards:     []int{1, 2, 4},
		Seeds:      3,
	}
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 {
		t.Errorf("main block shards = %d, want 4 (last sweep entry)", res.Shards)
	}
	if len(res.ShardSweep) != 3 {
		t.Fatalf("sweep rows = %d, want 3", len(res.ShardSweep))
	}
	for i, want := range []int{1, 2, 4} {
		row := res.ShardSweep[i]
		if row.Shards != want || row.Ops != 16 || row.OpsPerSec <= 0 || row.P50 <= 0 {
			t.Errorf("sweep row %d degenerate: %+v", i, row)
		}
	}
	if res.CrossChecked != 16 || res.Mismatches != 0 {
		t.Errorf("cross-check %d/%d (sharded arm diverged from the 1-shard path)", res.Mismatches, res.CrossChecked)
	}
	// The result must survive report validation with its sweep block.
	rep := &Report{Schema: SchemaVersion, Description: "x", Environment: CurrentEnvironment(), Scenarios: []ScenarioResult{*res}}
	if err := ValidateReport(rep); err != nil {
		t.Errorf("sharded result fails report validation: %v", err)
	}
}

// TestRunShardSweepServe runs the sweep through the http-serve driver: the
// spawned server is sized with server.Config.Shards per arm.
func TestRunShardSweepServe(t *testing.T) {
	sc := &Scenario{
		Name:   "test-shard-serve",
		Driver: DriverHTTPServe,
		Graphs: []GraphSpec{{Gen: "udg:300:0.12:1", Name: "u"}},
		Closed: &ClosedLoop{Concurrency: 2, Ops: 12},
		Shards: []int{1, 2},
		Seeds:  6, // rotate seeds so most measured ops are cold (the sharded path)
	}
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 2 || len(res.ShardSweep) != 2 {
		t.Fatalf("sweep shape: shards=%d rows=%d", res.Shards, len(res.ShardSweep))
	}
	for i, row := range res.ShardSweep {
		if row.OpsPerSec <= 0 {
			t.Errorf("sweep row %d degenerate: %+v", i, row)
		}
	}
}

func TestShardSpecValidation(t *testing.T) {
	closed := &ClosedLoop{Concurrency: 1, Ops: 4}
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"shards on sim driver", func(sc *Scenario) { sc.Driver = DriverInprocSim; sc.Shards = []int{2} }, "no sharded engine"},
		{"shards with open loop", func(sc *Scenario) {
			sc.Closed = nil
			sc.Open = &OpenLoop{Rate: 10, DurationSec: 1}
			sc.Shards = []int{2}
		}, "require a closed loop"},
		{"shards with frac", func(sc *Scenario) { sc.Shards = []int{2}; sc.Matrix.Algos = []string{"frac"} }, "support algos kw|kw2"},
		{"shards with batch", func(sc *Scenario) { sc.Shards = []int{2}; sc.BatchSize = 4 }, "mutually exclusive"},
		{"shard count zero", func(sc *Scenario) { sc.Shards = []int{0} }, "outside [1,"},
		{"shards with remote url", func(sc *Scenario) {
			sc.Driver = DriverHTTPServe
			sc.Shards = []int{2}
			sc.HTTP = &HTTPSpec{URL: "http://example.invalid"}
		}, "remote target"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := &Scenario{
				Name:   "v",
				Driver: DriverInprocFast,
				Graphs: []GraphSpec{{Gen: "udg:100:0.2:1"}},
				Closed: closed,
			}
			c.mut(sc)
			err := sc.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}
