//go:build !unix

package graphio

import (
	"io"
	"os"
)

// mapFile on platforms without a usable mmap: read the whole file. The
// parser's aliasing and validation are identical; only the zero-copy
// property is lost.
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	data, err := io.ReadAll(f)
	return data, false, err
}

func unmapFile(data []byte) {}
