package graphio

import (
	"strings"
	"testing"

	"kwmds/internal/graph"
)

// TestReadEdgeListMalformed drives the parser's rejection paths; every
// error must carry the line number where the problem occurs.
func TestReadEdgeListMalformed(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string // substring of the error message
	}{
		{"duplicate header", "n 5\nn 9\n0 1\n", "line 2: duplicate \"n\" header"},
		{"header after edges", "0 1\nn 5\n", "line 2: \"n\" header after 1 edge lines"},
		{"header after edges with comments", "# c\n\n0 1\n1 2\nn 9\n", "line 5: \"n\" header after 2 edge lines"},
		{"out of range for declared n", "n 3\n0 1\n1 5\n", "line 3: edge (1,5) out of range for declared n=3"},
		{"negative id", "0 -2\n", "line 1: negative vertex id"},
		{"negative id with header", "n 4\n-1 2\n", "line 2: negative vertex id"},
		{"malformed header", "n\n", "line 1: malformed header"},
		{"bad vertex count", "n x\n", "line 1: bad vertex count"},
		{"negative vertex count", "n -4\n", "line 1: bad vertex count"},
		{"three fields", "0 1 2\n", "line 1: expected \"u v\""},
		{"non-numeric vertex", "0 b\n", "line 1: bad vertex"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadEdgeList(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("ReadEdgeList(%q) accepted malformed input", tc.input)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestReadEdgeListStillAcceptsValid(t *testing.T) {
	cases := []struct {
		name      string
		input     string
		wantN     int
		wantEdges int
	}{
		{"header first", "n 4\n0 1\n2 3\n", 4, 2},
		{"no header", "0 1\n1 2\n", 3, 2},
		{"comments and blanks", "# hi\n\nn 3\n# mid\n0 2\n", 3, 1},
		{"isolated vertices", "n 10\n0 1\n", 10, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := ReadEdgeList(strings.NewReader(tc.input))
			if err != nil {
				t.Fatal(err)
			}
			if g.N() != tc.wantN || g.M() != tc.wantEdges {
				t.Errorf("got n=%d m=%d, want n=%d m=%d", g.N(), g.M(), tc.wantN, tc.wantEdges)
			}
		})
	}
}

func TestDigest(t *testing.T) {
	a := graph.MustNew(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	// Same topology from reversed orientations and duplicated edges.
	b := graph.MustNew(5, [][2]int{{4, 3}, {2, 1}, {1, 0}, {0, 1}})
	if Digest(a) != Digest(b) {
		t.Error("digest differs across edge order/orientation of the same topology")
	}
	c := graph.MustNew(5, [][2]int{{0, 1}, {1, 2}, {3, 4}, {0, 4}})
	if Digest(a) == Digest(c) {
		t.Error("different topologies share a digest")
	}
	d := graph.MustNew(6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	if Digest(a) == Digest(d) {
		t.Error("different vertex counts share a digest")
	}
	if len(Digest(a)) != 64 {
		t.Errorf("digest length = %d, want 64 hex chars", len(Digest(a)))
	}
}

func TestDecodeSolveRequest(t *testing.T) {
	cases := []struct {
		name  string
		body  string
		want  string // "" = accept
	}{
		{"ok inline", `{"graph":{"n":3,"edges":[[0,1]]}}`, ""},
		{"ok ref", `{"graph_ref":"udg-1k","algo":"kwcds","variant":"ln-lnln"}`, ""},
		{"not json", `{"graph_ref":`, "solve request"},
		{"unknown field", `{"graph_ref":"x","bogus":1}`, "bogus"},
		{"no source", `{"algo":"kw"}`, "exactly one of"},
		{"both sources", `{"graph":{"n":1,"edges":[]},"graph_ref":"x"}`, "exactly one of"},
		{"bad algo", `{"graph_ref":"x","algo":"dijkstra"}`, "unknown algo"},
		{"bad variant", `{"graph_ref":"x","variant":"sqrt"}`, "unknown variant"},
		{"kw2 with weights", `{"graph_ref":"x","algo":"kw2","weights":[1,2]}`, "not supported with algo"},
		{"trailing data", `{"graph_ref":"x"}{"graph_ref":"y"}`, "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := DecodeSolveRequest(strings.NewReader(tc.body))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("rejected valid body: %v", err)
				}
				if req.Algo == "" {
					t.Error("algo default not applied")
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted malformed body %q", tc.body)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}
