package graphio

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"unsafe"

	"kwmds/internal/graph"
)

// OpenMapped memory-maps a kwcsr container and aliases the graph's CSR
// arrays (and optional weight vector) directly out of the mapping: no
// allocation proportional to the graph, no decode pass, no copy — opening a
// multi-million-vertex container costs one page-table setup plus the O(n)
// validation of the offset array. The two O(payload) passes are deferred
// off the open path: the embedded SHA-256 is not recomputed (VerifyDigest
// does it on demand) and the adjacency rows are not content-checked
// (VerifyStructure does, once, memoized). Both are pure memory-bandwidth
// scans that would dominate the open — deferring them is what makes a
// million-vertex open a few milliseconds instead of tens.
//
// Fail-closed where it must be: every header count is bounds-checked
// against the actual file size before any byte of the payload is aliased
// (a truncated or hand-shortened container is rejected with the streaming
// readers' diagnostics, never a mapping whose tail would fault on first
// touch), and the offset array is fully validated because offsets slice
// the adjacency everywhere downstream. What the deferral leaves open is
// adjacency *content*: a container whose rows break the canonical-CSR
// contract yields a graph on which kernels can panic (Go bounds checks —
// never corrupt memory). Call VerifyStructure before trusting a container
// you did not write; long-lived paths (serve preload) do so at startup.
//
// The returned MappedGraph owns the mapping. Its Graph's CSR slices alias
// mapped memory, so the mapping must outlive every use of the graph —
// Retain/Release pin it across in-flight solves, and Close drops the
// owner's reference. On platforms without mmap (and for containers whose
// byte order or alignment defeats aliasing) OpenMapped transparently falls
// back to a read-and-decode with identical semantics.
func OpenMapped(path string) (*MappedGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size != int64(int(size)) {
		return nil, fmt.Errorf("graphio: kwcsr container %s too large to map", path)
	}
	data, mapped, err := mapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("graphio: mapping %s: %w", path, err)
	}
	m, err := parseMappedBytes(data)
	if err != nil {
		if mapped {
			unmapFile(data)
		}
		return nil, err
	}
	m.mapped = mapped
	return m, nil
}

// MappedGraph is an open handle on a memory-mapped kwcsr container. The
// graph it exposes aliases the mapping, so the handle's lifetime bounds the
// graph's: Close when done, Retain/Release to pin it across concurrent use.
type MappedGraph struct {
	g       *graph.Graph
	weights []float64
	digest  [sha256.Size]byte
	data    []byte
	mapped  bool // data is an mmap (unmap on last release) vs a heap copy
	refs    atomic.Int64
	closed  atomic.Bool

	structOnce sync.Once
	structErr  error
}

// Graph returns the mapped graph. Its CSR arrays alias the mapping: valid
// only while the handle holds a reference (between Open/Retain and
// Close/Release).
func (m *MappedGraph) Graph() *graph.Graph { return m.g }

// Weights returns the container's per-vertex weight vector, nil when it
// carries none. Aliases the mapping under the same lifetime rules as Graph.
func (m *MappedGraph) Weights() []float64 { return m.weights }

// Digest returns the container's embedded topology digest in the hex form
// Digest(g) produces — the cache key topology-addressed caches use — without
// recomputing anything. Trust it only after VerifyDigest.
func (m *MappedGraph) Digest() string { return hex.EncodeToString(m.digest[:]) }

// VerifyDigest recomputes the SHA-256 over the mapped (n, off, adj) and
// compares it to the container's embedded digest — the integrity check
// OpenMapped defers off the open path. It reads the whole mapping once;
// call it after open (or from a background goroutine holding a Retain)
// when the container crosses a trust boundary.
func (m *MappedGraph) VerifyDigest() error {
	off, adj := m.g.CSR()
	if csrDigest(m.g.N(), off, adj) != m.digest {
		return fmt.Errorf("graphio: kwcsr digest mismatch: container corrupt or hand-edited")
	}
	return nil
}

// VerifyStructure checks the adjacency rows against the canonical-CSR
// contract the kernels assume — strictly increasing, in range, no
// self-loops — the O(e) content pass OpenMapped defers (the offsets were
// already validated at open). Memoized: the scan runs once per handle, so
// calling it before every solve costs one atomic after the first. Like
// VerifyDigest, run it when the container crosses a trust boundary; a
// structurally invalid container can make a solver panic (Go bounds
// checks), never corrupt memory.
func (m *MappedGraph) VerifyStructure() error {
	m.structOnce.Do(func() {
		off, adj := m.g.CSR()
		n := m.g.N()
		if !scanRows(off, adj, n) {
			return
		}
		// The fast scan may flag false positives on values whose high bit
		// defeats its wrap tricks, but never misses a real violation — this
		// precise pass is the verdict and carries the streaming readers'
		// exact diagnostics.
		for v := 0; v < n; v++ {
			prev := int32(-1)
			vv := int32(v)
			for i, u := range adj[off[v]:off[v+1]] {
				if u == vv {
					m.structErr = fmt.Errorf("graphio: kwcsr self-loop at vertex %d", v)
					return
				}
				if u <= prev {
					m.structErr = fmt.Errorf("graphio: kwcsr adjacency row of vertex %d is not strictly increasing", v)
					return
				}
				if uint32(u) >= uint32(n) {
					m.structErr = fmt.Errorf("graphio: kwcsr payload rejected: adj[%d] = %d out of range [0,%d)", int(off[v])+i, u, n)
					return
				}
				prev = u
			}
		}
	})
	return m.structErr
}

// Retain acquires an additional reference, pinning the mapping across a
// concurrent use (a solve in flight while another goroutine may Close). It
// fails — returning false — once the last reference is gone; a false return
// means the mapping may already be unmapped and the graph must not be
// touched.
func (m *MappedGraph) Retain() bool {
	for {
		r := m.refs.Load()
		if r <= 0 {
			return false
		}
		if m.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release drops a reference taken by Retain (or the open itself, via Close).
// The mapping is unmapped when the last reference drops, at which point the
// graph's memory is gone — every Retain must be balanced before then.
func (m *MappedGraph) Release() {
	if m.refs.Add(-1) == 0 {
		data := m.data
		m.data = nil
		if m.mapped {
			unmapFile(data)
		}
	}
}

// Close drops the owner's reference. The mapping is unmapped once every
// outstanding Retain is released; closing twice is an error (it would
// double-release a reference the caller no longer holds).
func (m *MappedGraph) Close() error {
	if m.closed.Swap(true) {
		return fmt.Errorf("graphio: MappedGraph closed twice")
	}
	m.Release()
	return nil
}

// hostLittleEndian reports whether int32/float64 slices may alias the
// container's little-endian payload directly.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// parseMappedBytes validates a whole in-memory kwcsr image and builds the
// graph over it, aliasing the payload when the platform allows and
// copy-decoding otherwise. It is the pure core of OpenMapped — no file I/O —
// so the fuzz harness can drive it with the same corpus as the streaming
// readers. Every count is checked against len(data) before any slice is
// formed: short data yields the streaming readers' truncation diagnostics,
// never a panic.
func parseMappedBytes(data []byte) (*MappedGraph, error) {
	if len(data) < kwcsrHeaderSize {
		return nil, fmt.Errorf("graphio: kwcsr container truncated: %d bytes, header is %d", len(data), kwcsrHeaderSize)
	}
	hdr := data[:kwcsrHeaderSize]
	if string(hdr[0:6]) != kwcsrMagic {
		return nil, fmt.Errorf("graphio: not a kwcsr container (bad magic %q)", hdr[0:6])
	}
	if v := binary.LittleEndian.Uint16(hdr[6:8]); v != kwcsrVersion {
		return nil, fmt.Errorf("graphio: unsupported kwcsr version %d (want %d)", v, kwcsrVersion)
	}
	n64 := binary.LittleEndian.Uint64(hdr[8:16])
	e64 := binary.LittleEndian.Uint64(hdr[16:24])
	flags := binary.LittleEndian.Uint64(hdr[24:32])
	if flags&^uint64(kwcsrHasWeights) != 0 {
		return nil, fmt.Errorf("graphio: kwcsr container has unknown flags %#x", flags)
	}
	const maxCount = 1 << 31
	if n64 >= maxCount || e64 >= maxCount {
		return nil, fmt.Errorf("graphio: kwcsr counts n=%d e=%d exceed limit %d", n64, e64, maxCount)
	}
	n, e := int(n64), int(e64)
	want, pad := containerSize(n, e, flags)
	// The fail-closed gate: no payload byte is aliased or allocated until
	// the header's declared extent fits the bytes actually present.
	if len(data) < want {
		return nil, fmt.Errorf("graphio: kwcsr container is shorter than the %d bytes its header declares", want)
	}
	if len(data) > want {
		return nil, fmt.Errorf("graphio: kwcsr container is longer than the %d bytes its header declares", want)
	}
	m := &MappedGraph{data: data}
	copy(m.digest[:], hdr[32:64])

	offB := data[kwcsrHeaderSize : kwcsrHeaderSize+(n+1)*4]
	adjB := data[kwcsrHeaderSize+(n+1)*4 : kwcsrHeaderSize+(n+1+e)*4]
	for _, b := range data[kwcsrHeaderSize+(n+1+e)*4 : kwcsrHeaderSize+(n+1+e)*4+pad] {
		if b != 0 {
			return nil, fmt.Errorf("graphio: kwcsr padding bytes are not zero")
		}
	}
	off := aliasInt32(offB, n+1)
	adj := aliasInt32(adjB, e)
	if off == nil || adj == nil {
		// Big-endian host or misaligned buffer: decode into fresh arrays.
		// Rare path, same validation below either way.
		off = make([]int32, n+1)
		for i := range off {
			off[i] = int32(binary.LittleEndian.Uint32(offB[i*4:]))
		}
		adj = make([]int32, e)
		for i := range adj {
			adj[i] = int32(binary.LittleEndian.Uint32(adjB[i*4:]))
		}
	}

	// Offset validation — the only payload pass the open performs, and a
	// load-bearing one: off slices adj everywhere downstream, so monotonic
	// offsets spanning exactly [0, e] are what make every later row access
	// in-bounds. The adjacency row contract (strictly increasing, in range,
	// no self-loops) is O(e) of pure memory bandwidth and is deferred to
	// VerifyStructure, like the digest — that deferral is what makes the
	// open itself O(n).
	if off[0] != 0 || int(off[n]) != e {
		return nil, fmt.Errorf("graphio: kwcsr payload rejected: offsets span [%d,%d], want [0,%d]", off[0], off[n], e)
	}
	maxDeg := 0
	for v := 0; v < n; v++ {
		if off[v] > off[v+1] {
			return nil, fmt.Errorf("graphio: kwcsr offsets decrease at vertex %d", v)
		}
		if d := int(off[v+1] - off[v]); d > maxDeg {
			maxDeg = d
		}
	}
	m.g = graph.FromCSRUnchecked(off, adj, maxDeg)

	if flags&kwcsrHasWeights != 0 {
		wB := data[want-n*8:]
		m.weights = aliasFloat64(wB, n)
		if m.weights == nil {
			m.weights = make([]float64, n)
			for i := range m.weights {
				m.weights[i] = math.Float64frombits(binary.LittleEndian.Uint64(wB[i*8:]))
			}
		}
	}
	m.refs.Store(1)
	return m, nil
}

// scanRows is the admission pass over the adjacency rows: a branchless
// accumulator that stays zero for every canonical payload and goes nonzero
// for every violation of the row contract (strictly increasing, in range,
// no self-loops). Violations are detected through wrap tricks on the high
// bit, so some out-of-range bit patterns flag through a different term than
// a precise scan would name — callers treat nonzero as "re-scan precisely
// for the diagnostic", never as a verdict. For the inductive first
// violation (all earlier elements valid, so prev ∈ [-1, n)) each term is
// exact on valid-range values and at least one term fires on any invalid
// one; on a fully canonical payload no term ever fires, so valid containers
// take exactly one pass.
func scanRows(off, adj []int32, n int) bool {
	un1 := uint32(n) - 1
	var bad uint32
	for v := 0; v < n; v++ {
		prev := int32(-1)
		uvv := uint32(v)
		for _, u := range adj[off[v]:off[v+1]] {
			uu := uint32(u)
			// Bit 31 of: un1-uu (out of range), u-prev-1 (not strictly
			// increasing), (uu^uvv)-1 (self-loop). Low bits are noise.
			bad |= (un1 - uu) | uint32(u-prev-1) | ((uu ^ uvv) - 1)
			prev = u
		}
	}
	return bad>>31 != 0
}

// aliasInt32 reinterprets b as count little-endian int32s in place, or
// returns nil when the host byte order or the buffer's alignment makes the
// view unsound (callers fall back to a copy-decode).
func aliasInt32(b []byte, count int) []int32 {
	if count == 0 {
		return []int32{}
	}
	if !hostLittleEndian || uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(int32(0)) != 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), count)
}

// aliasFloat64 is aliasInt32 for the weight section.
func aliasFloat64(b []byte, count int) []float64 {
	if count == 0 {
		return []float64{}
	}
	if !hostLittleEndian || uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(float64(0)) != 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), count)
}
