package graphio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"kwmds/internal/graph"
)

// This file defines the wire format of the serve subsystem (POST /v1/solve).
// It lives in graphio rather than internal/server so the load-generator
// bench and any future clients share one codec with the handlers.

// SolveRequest is the JSON body of a solve call. Exactly one of Graph or
// GraphRef selects the topology.
type SolveRequest struct {
	// Graph is an inline topology (same shape as the JSON graph format).
	// It stays raw at decode time so the edge-list materialization —
	// the expensive part of a request — can run under the server's
	// worker pool (BuildGraph) instead of on the request goroutine.
	Graph json.RawMessage `json:"graph,omitempty"`
	// GraphRef names a graph preloaded into the server.
	GraphRef string `json:"graph_ref,omitempty"`
	// Algo is the pipeline to run: kw | kw2 | kwcds | frac (default kw).
	Algo string `json:"algo,omitempty"`
	// K is the trade-off parameter (0 = k = log ∆).
	K int `json:"k,omitempty"`
	// Seed drives the rounding stage's coin flips.
	Seed int64 `json:"seed,omitempty"`
	// Variant is the rounding scaling: "ln" (default) | "ln-lnln".
	Variant string `json:"variant,omitempty"`
	// Weights, when non-empty, runs the weighted variant (len must equal n).
	Weights []float64 `json:"weights,omitempty"`
	// Engine selects the execution backend: "fast" (default — the
	// internal/fastpath flat-CSR solver; rounds/messages/bits are 0 in the
	// response) or "sim" (the message-passing simulation, which costs an
	// order of magnitude more compute but reports the distributed-round
	// statistics). Both produce bit-identical sets.
	Engine string `json:"engine,omitempty"`
	// Sequential is the pre-engine spelling of Engine = "fast", kept for
	// request compatibility.
	Sequential bool `json:"sequential,omitempty"`
	// Members asks for the chosen vertex ids in the response (off by
	// default: on large graphs the id list dominates the payload).
	Members bool `json:"members,omitempty"`
	// Epoch, when set, pins the request to one epoch of a mutable preloaded
	// graph: if the graph has been mutated past it (or not that far yet)
	// the server answers 409 instead of silently solving a different
	// topology. Only valid with GraphRef.
	Epoch *int64 `json:"epoch,omitempty"`
	// UseGraphWeights runs the weighted variant with the preloaded graph's
	// current (mutable) cost vector instead of an inline Weights list.
	// Requires GraphRef, a graph that has received at least one set_weight
	// mutation, and no inline Weights.
	UseGraphWeights bool `json:"use_graph_weights,omitempty"`
}

// SolveResponse is the JSON body of a successful solve call.
type SolveResponse struct {
	// Digest identifies the topology that was solved (hex SHA-256 of the
	// canonical CSR form); requests carrying an identical topology hit the
	// same cache entry.
	Digest string `json:"digest"`
	Algo   string `json:"algo"`
	// Engine is the backend that computed the result ("fast" or "sim").
	Engine string `json:"engine"`
	K      int    `json:"k"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	// Size is |DS| (for algo=frac it is 0 and LPObjective carries the
	// result).
	Size         int     `json:"size"`
	WeightedCost float64 `json:"weighted_cost,omitempty"`
	LPObjective  float64 `json:"lp_objective"`
	Bound        float64 `json:"bound,omitempty"`
	Rounds       int     `json:"rounds"`
	Messages     int64   `json:"messages"`
	Bits         int64   `json:"bits"`
	JoinedRandom int     `json:"joined_random,omitempty"`
	JoinedFixup  int     `json:"joined_fixup,omitempty"`
	Connectors   int     `json:"connectors,omitempty"`
	Members      []int   `json:"members,omitempty"`
	// Cached reports whether the result came from the server's LRU cache.
	Cached bool `json:"cached"`
	// ElapsedMS is the in-process compute time (0 for cache hits).
	ElapsedMS float64 `json:"elapsed_ms"`
	// Epoch is the mutation epoch of the preloaded graph that was solved
	// (0 for inline graphs and never-mutated preloads).
	Epoch int64 `json:"epoch,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx serve reply. Code, when
// present, is a stable machine-readable discriminator for errors a client is
// expected to branch on (retry, fail over); the human-readable Error text is
// free to change.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Stable error codes carried in ErrorResponse.Code.
const (
	// CodeWorkerUnavailable: a serve-router request could not be completed
	// because a placed shard worker was unreachable or failed mid-solve.
	// Retryable — the router re-places on the next request.
	CodeWorkerUnavailable = "worker_unavailable"
	// CodeNotImplemented: the endpoint exists but is not served in this mode
	// (e.g. mutate on a router).
	CodeNotImplemented = "not_implemented"
	// CodeOverloaded: the solve was shed by admission control (queue full or
	// queue timeout). Retryable after the Retry-After delay; the computation
	// never started.
	CodeOverloaded = "overloaded"
)

// DecodeSolveRequest parses and structurally validates a solve body: valid
// JSON with no unknown fields, exactly one topology source, and a known
// algo/variant. Graph construction and option validation happen later (the
// facade owns those rules); this layer only rejects malformed envelopes.
func DecodeSolveRequest(r io.Reader) (*SolveRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req SolveRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("graphio: solve request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("graphio: solve request: trailing data after JSON body")
	}
	if string(req.Graph) == "null" {
		req.Graph = nil
	}
	if (len(req.Graph) == 0) == (req.GraphRef == "") {
		return nil, fmt.Errorf("graphio: solve request: exactly one of \"graph\" and \"graph_ref\" is required")
	}
	if req.Algo == "" {
		req.Algo = "kw"
	}
	switch req.Algo {
	case "kw", "kw2", "kwcds", "frac":
	default:
		return nil, fmt.Errorf("graphio: solve request: unknown algo %q (want kw|kw2|kwcds|frac)", req.Algo)
	}
	switch req.Variant {
	case "", "ln", "ln-lnln":
	default:
		return nil, fmt.Errorf("graphio: solve request: unknown variant %q (want ln|ln-lnln)", req.Variant)
	}
	switch req.Engine {
	case "":
		req.Engine = "fast"
	case "fast":
	case "sim":
		if req.Sequential {
			return nil, fmt.Errorf("graphio: solve request: \"sequential\": true conflicts with \"engine\": \"sim\"")
		}
	default:
		return nil, fmt.Errorf("graphio: solve request: unknown engine %q (want fast|sim)", req.Engine)
	}
	// The weighted variant is defined only for the unknown-∆ LP stage
	// (the facade dispatches on Weights before KnownDelta); accepting the
	// combination would mislabel a weighted run as kw2.
	if req.Algo == "kw2" && (len(req.Weights) > 0 || req.UseGraphWeights) {
		return nil, fmt.Errorf("graphio: solve request: weights are not supported with algo \"kw2\" (use kw)")
	}
	if req.Epoch != nil && req.GraphRef == "" {
		return nil, fmt.Errorf("graphio: solve request: \"epoch\" requires \"graph_ref\" (inline graphs have no mutation epoch)")
	}
	if req.UseGraphWeights {
		if req.GraphRef == "" {
			return nil, fmt.Errorf("graphio: solve request: \"use_graph_weights\" requires \"graph_ref\"")
		}
		if len(req.Weights) > 0 {
			return nil, fmt.Errorf("graphio: solve request: \"use_graph_weights\" conflicts with inline \"weights\"")
		}
	}
	return &req, nil
}

// ShardSolveRequest is the JSON body of POST /shard/v1/solve — the router →
// worker leg of a scatter-gather solve. The router splits one client solve
// into Shards of these, one per placed worker; each worker runs its shard of
// the partitioned fastpath engine, meshing with its peers over the data
// addresses, and answers with its owned slice of the solution.
type ShardSolveRequest struct {
	// GraphRef names the preloaded graph (workers hold the full topology;
	// sharding is an execution split, not a storage split).
	GraphRef string `json:"graph_ref"`
	// SolveID identifies this scatter's exchange mesh: every peer
	// connection handshakes with it so concurrent solves over the same
	// workers never cross wires.
	SolveID uint64 `json:"solve_id"`
	// Shard is this worker's shard index in [0, Shards).
	Shard int `json:"shard"`
	// Shards is the partition width.
	Shards int `json:"shards"`
	// DataAddrs[t] is the mesh data address of shard t's worker
	// (DataAddrs[Shard] is the recipient's own and is ignored).
	DataAddrs []string `json:"data_addrs"`
	// Algo is kw or kw2 — the pipelines the sharded engine runs.
	Algo string `json:"algo,omitempty"`
	// K, Seed, Variant as in SolveRequest.
	K       int    `json:"k,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	Variant string `json:"variant,omitempty"`
}

// ShardSolveResponse is a worker's slice of a scatter-gather solve: the
// fractional values and chosen vertices of its owned range [Lo, Hi). The
// router reassembles the full solution by concatenating slices in shard
// order — deterministic, since ranges are disjoint and each is ascending.
type ShardSolveResponse struct {
	Digest string `json:"digest"`
	Epoch  int64  `json:"epoch,omitempty"`
	K      int    `json:"k"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	Lo     int    `json:"lo"`
	Hi     int    `json:"hi"`
	// X is the fractional solution over [Lo, Hi), len Hi-Lo.
	X []float64 `json:"x"`
	// Members are the chosen vertex ids within [Lo, Hi), ascending.
	Members      []int   `json:"members"`
	JoinedRandom int     `json:"joined_random"`
	JoinedFixup  int     `json:"joined_fixup"`
	ElapsedMS    float64 `json:"elapsed_ms"`
}

// ShardInfoResponse is the JSON body of GET /shard/v1/info: how a worker
// advertises its mesh data address to the router.
type ShardInfoResponse struct {
	DataAddr string `json:"data_addr"`
}

// DecodeShardSolveRequest parses and structurally validates a shard solve
// body. Graph resolution and option validation happen in the worker.
func DecodeShardSolveRequest(r io.Reader) (*ShardSolveRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req ShardSolveRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("graphio: shard solve request: %w", err)
	}
	if req.GraphRef == "" {
		return nil, fmt.Errorf("graphio: shard solve request: \"graph_ref\" is required")
	}
	if req.Shards < 1 {
		return nil, fmt.Errorf("graphio: shard solve request: shards = %d, want >= 1", req.Shards)
	}
	if req.Shard < 0 || req.Shard >= req.Shards {
		return nil, fmt.Errorf("graphio: shard solve request: shard %d outside [0, %d)", req.Shard, req.Shards)
	}
	if len(req.DataAddrs) != req.Shards {
		return nil, fmt.Errorf("graphio: shard solve request: %d data_addrs for %d shards", len(req.DataAddrs), req.Shards)
	}
	if req.Algo == "" {
		req.Algo = "kw"
	}
	switch req.Algo {
	case "kw", "kw2":
	default:
		return nil, fmt.Errorf("graphio: shard solve request: unknown algo %q (sharded solves run kw|kw2)", req.Algo)
	}
	switch req.Variant {
	case "", "ln", "ln-lnln":
	default:
		return nil, fmt.Errorf("graphio: shard solve request: unknown variant %q (want ln|ln-lnln)", req.Variant)
	}
	return &req, nil
}

// Mutation ops accepted by POST /v1/graphs/{name}/mutate.
const (
	OpAddEdge    = "add_edge"
	OpRemoveEdge = "remove_edge"
	OpAddVertex  = "add_vertex"
	OpSetWeight  = "set_weight"
)

// Mutation is one entry of a mutate call's batch.
type Mutation struct {
	// Op is add_edge | remove_edge | add_vertex | set_weight.
	Op string `json:"op"`
	// U and V are the edge endpoints (add_edge, remove_edge) or U the
	// target vertex (set_weight).
	U int `json:"u,omitempty"`
	V int `json:"v,omitempty"`
	// W is the new weight (set_weight only; finite, ≥ 1).
	W float64 `json:"w,omitempty"`
}

// MutateRequest is the JSON body of POST /v1/graphs/{name}/mutate. The
// batch is applied atomically as one epoch: either every mutation commits
// or none does.
type MutateRequest struct {
	// Epoch, when set, makes the batch conditional: it applies only if the
	// graph is still at that epoch (optimistic concurrency; 409 otherwise).
	Epoch *int64 `json:"epoch,omitempty"`
	// Sync, on a durable (-data-dir) graph, controls when the call returns:
	// unset or true, only after the epoch's WAL record is fsynced; false
	// opts out explicitly — the record is buffered and a crash before the
	// next sync loses the epoch (the response says so via "durable": false).
	// Ignored (and harmless) on non-durable graphs.
	Sync *bool `json:"sync,omitempty"`
	// Mutations is the batch, applied in order. At least one is required.
	Mutations []Mutation `json:"mutations"`
}

// MutateResponse is the JSON body of a successful mutate call.
type MutateResponse struct {
	Name string `json:"name"`
	// Epoch is the graph's epoch after the commit.
	Epoch int64 `json:"epoch"`
	// Digest identifies the new topology; cache entries for the previous
	// digest have been dropped.
	Digest string `json:"digest"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	// Touched is the number of vertices whose adjacency changed.
	Touched int `json:"touched"`
	// Durable reports that the epoch's WAL record was fsynced before this
	// response (always false for graphs served without a data dir).
	Durable bool `json:"durable,omitempty"`
}

// DecodeMutateRequest parses and structurally validates a mutate body:
// strict JSON, at least one mutation, known ops with the right fields for
// each. Graph-level validation (range checks, duplicate edges) happens in
// the dyngraph engine.
func DecodeMutateRequest(r io.Reader) (*MutateRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req MutateRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("graphio: mutate request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("graphio: mutate request: trailing data after JSON body")
	}
	if len(req.Mutations) == 0 {
		return nil, fmt.Errorf("graphio: mutate request: empty mutation batch")
	}
	for i, m := range req.Mutations {
		switch m.Op {
		case OpAddEdge, OpRemoveEdge:
			if m.W != 0 {
				return nil, fmt.Errorf("graphio: mutate request: mutation %d: %s takes no \"w\"", i, m.Op)
			}
		case OpSetWeight:
			if m.V != 0 {
				return nil, fmt.Errorf("graphio: mutate request: mutation %d: set_weight takes \"u\" and \"w\", not \"v\"", i)
			}
		case OpAddVertex:
			if m.U != 0 || m.V != 0 || m.W != 0 {
				return nil, fmt.Errorf("graphio: mutate request: mutation %d: add_vertex takes no fields", i)
			}
		case "":
			return nil, fmt.Errorf("graphio: mutate request: mutation %d: missing op", i)
		default:
			return nil, fmt.Errorf("graphio: mutate request: mutation %d: unknown op %q (want %s|%s|%s|%s)",
				i, m.Op, OpAddEdge, OpRemoveEdge, OpAddVertex, OpSetWeight)
		}
	}
	return &req, nil
}

// BuildGraph materializes the request's inline topology. maxVertices caps
// the declared vertex count before the O(n) CSR allocation: without it a
// 40-byte body declaring n=2e9 would OOM the process. The edge-list decode
// itself is bounded by the body-size limit upstream.
func (req *SolveRequest) BuildGraph(maxVertices int) (*graph.Graph, error) {
	if len(req.Graph) == 0 {
		return nil, fmt.Errorf("graphio: solve request: no inline graph")
	}
	dec := json.NewDecoder(bytes.NewReader(req.Graph))
	dec.DisallowUnknownFields()
	var jg JSONGraph
	if err := dec.Decode(&jg); err != nil {
		return nil, fmt.Errorf("graphio: solve request: graph: %w", err)
	}
	if maxVertices > 0 && jg.N > maxVertices {
		return nil, fmt.Errorf("graphio: solve request: inline graph n=%d exceeds the server limit of %d vertices", jg.N, maxVertices)
	}
	g, err := graph.New(jg.N, jg.Edges)
	if err != nil {
		return nil, fmt.Errorf("graphio: solve request: %w", err)
	}
	return g, nil
}
