package graphio

import (
	"bytes"
	"strings"
	"testing"

	"kwmds/internal/gen"
	"kwmds/internal/graph"
)

func TestEdgeListRoundtrip(t *testing.T) {
	g, err := gen.GNP(60, 0.1, 17)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("roundtrip changed graph: %v -> %v", g, g2)
	}
	e1, e2 := g.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d changed: %v -> %v", i, e1[i], e2[i])
		}
	}
}

func TestEdgeListIsolatedVerticesSurvive(t *testing.T) {
	g := graph.MustNew(5, [][2]int{{0, 1}}) // vertices 2..4 isolated
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 5 {
		t.Errorf("n = %d after roundtrip, want 5", g2.N())
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := `# a comment

n 4
0 1
# another
2 3
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 2 {
		t.Errorf("parsed n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListInfersN(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n5 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 6 {
		t.Errorf("inferred n = %d, want 6", g.N())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"bad header", "n x\n"},
		{"header extra fields", "n 4 5\n"},
		{"negative header", "n -2\n"},
		{"one field", "3\n"},
		{"three fields", "1 2 3\n"},
		{"non-numeric u", "a 2\n"},
		{"non-numeric v", "1 b\n"},
		{"self loop", "1 1\n"},
		{"out of declared range", "n 2\n0 5\n"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tc.in)); err == nil {
				t.Errorf("input %q accepted, want error", tc.in)
			}
		})
	}
}

func TestJSONRoundtrip(t *testing.T) {
	g, err := gen.Grid(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	meta := map[string]string{"family": "grid", "rows": "4", "cols": "5"}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g, meta); err != nil {
		t.Fatal(err)
	}
	g2, meta2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("roundtrip changed graph: %v -> %v", g, g2)
	}
	if meta2["family"] != "grid" || meta2["cols"] != "5" {
		t.Errorf("metadata lost: %v", meta2)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, _, err := ReadJSON(strings.NewReader(`{"n":2,"edges":[[0,0]]}`)); err == nil {
		t.Error("self-loop JSON accepted")
	}
}
