package graphio

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"kwmds/internal/graph"
)

// Digest returns a hex SHA-256 over the graph's canonical CSR form (vertex
// count, offsets, sorted adjacency). Two graphs share a digest iff they are
// identical, regardless of the edge order or orientation they were built
// from, so the digest is a stable cache key for topology-addressed caches.
func Digest(g *graph.Graph) string {
	off, adj := g.CSR()
	sum := csrDigest(g.N(), off, adj)
	return hex.EncodeToString(sum[:])
}

// DigestRaw returns the raw (unencoded) SHA-256 CSR digest — the form the
// kwcsr container embeds and the WAL stores in its per-epoch pre/post
// fields, where 32 fixed bytes beat a 64-byte hex string. Digest is its hex
// encoding.
func DigestRaw(g *graph.Graph) [sha256.Size]byte {
	off, adj := g.CSR()
	return csrDigest(g.N(), off, adj)
}

// csrDigest is the digest computation over raw CSR arrays, shared by Digest
// (hex form) and the binary container (raw form embedded in the header, so
// a .kwcsr file carries exactly the digest the server would compute for its
// graph — no re-hash needed to address caches by topology).
func csrDigest(n int, off, adj []int32) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
	writeInt32s(h, off)
	writeInt32s(h, adj)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// writeInt32s hashes xs through a chunk buffer — one Write per 64 KiB, not
// per entry, which matters on the serve path where digesting an inline
// graph holds a worker-pool slot.
func writeInt32s(h interface{ Write([]byte) (int, error) }, xs []int32) {
	const chunk = 64 << 10
	buf := make([]byte, 0, chunk)
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
		if len(buf) == chunk {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		h.Write(buf)
	}
}
