package graphio

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kwmds/internal/gen"
)

func writeTempContainer(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.kwcsr")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMappedRoundTrip: OpenMapped must expose the same graph (and weights)
// the streaming readers decode, with the container's digest available
// without recompute and verifiable on demand.
func TestMappedRoundTrip(t *testing.T) {
	for name, g := range binaryGraphs(t) {
		t.Run(name, func(t *testing.T) {
			for _, withWeights := range []bool{false, true} {
				var weights []float64
				if withWeights {
					weights = make([]float64, g.N())
					for i := range weights {
						weights[i] = 1 + float64(i%9)/4
					}
				}
				var buf bytes.Buffer
				if err := WriteBinaryCSR(&buf, g, weights); err != nil {
					t.Fatal(err)
				}
				m, err := OpenMapped(writeTempContainer(t, buf.Bytes()))
				if err != nil {
					t.Fatalf("weights=%v: %v", withWeights, err)
				}
				got := m.Graph()
				if got.N() != g.N() || got.M() != g.M() || got.MaxDegree() != g.MaxDegree() {
					t.Fatalf("shape changed: n=%d m=%d maxdeg=%d", got.N(), got.M(), got.MaxDegree())
				}
				if Digest(got) != Digest(g) {
					t.Fatal("mapped graph digest differs from source")
				}
				if m.Digest() != Digest(g) {
					t.Fatal("embedded digest accessor differs from computed digest")
				}
				if err := m.VerifyDigest(); err != nil {
					t.Fatalf("VerifyDigest on intact container: %v", err)
				}
				if err := m.VerifyStructure(); err != nil {
					t.Fatalf("VerifyStructure on intact container: %v", err)
				}
				if withWeights != (m.Weights() != nil && len(m.Weights()) == g.N()) {
					t.Fatalf("weights presence: wrote %v, mapped %v", withWeights, m.Weights() != nil)
				}
				for i, w := range m.Weights() {
					if w != weights[i] {
						t.Fatalf("weight[%d] = %v, wrote %v", i, w, weights[i])
					}
				}
				if err := m.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestMappedRejection drives the streaming readers' corruption table through
// the mapped path: every malformed container must fail closed at open —
// before any payload byte is aliased — never yield a handle.
func TestMappedRejection(t *testing.T) {
	base := validContainer(t)
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), base...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"truncated header", base[:17], "truncated"},
		{"bad magic", mut(func(b []byte) { b[0] = 'X' }), "bad magic"},
		{"wrong version", mut(func(b []byte) { binary.LittleEndian.PutUint16(b[6:8], 9) }), "version 9"},
		{"unknown flags", mut(func(b []byte) { b[24] = 0xFF }), "unknown flags"},
		{"overflowing n", mut(func(b []byte) { binary.LittleEndian.PutUint64(b[8:16], 1<<40) }), "exceed limit"},
		{"overflowing e", mut(func(b []byte) { binary.LittleEndian.PutUint64(b[16:24], 1<<62) }), "exceed limit"},
		// The fail-closed bounds check: header counts far beyond the actual
		// file size must be rejected by arithmetic alone, not by faulting on
		// a short mapping.
		{"undersized for declared counts", mut(func(b []byte) { binary.LittleEndian.PutUint64(b[16:24], 1<<30) }), "shorter than"},
		{"truncated payload", base[:len(base)-5], "shorter than"},
		{"trailing garbage", append(append([]byte(nil), base...), 0, 0, 0), "longer than"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := OpenMapped(writeTempContainer(t, tc.data))
			if err == nil {
				m.Close()
				t.Fatal("corrupt container accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestMappedStructuralRejection: digests recomputed over structurally bad
// arrays must not launder invalid topology through the mapped path either.
// Offset violations fail at open (offsets are load-bearing for every later
// slice of the mapping); adjacency-content violations open fine — the open
// is O(n) by design — and are caught by the deferred VerifyStructure pass.
func TestMappedStructuralRejection(t *testing.T) {
	craft := func(n int, off, adj []int32) []byte {
		var buf bytes.Buffer
		var hdr [kwcsrHeaderSize]byte
		copy(hdr[0:6], kwcsrMagic)
		binary.LittleEndian.PutUint16(hdr[6:8], kwcsrVersion)
		binary.LittleEndian.PutUint64(hdr[8:16], uint64(n))
		binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(adj)))
		sum := csrDigest(n, off, adj)
		copy(hdr[32:64], sum[:])
		buf.Write(hdr[:])
		writeInt32LE(&buf, off)
		writeInt32LE(&buf, adj)
		if pad := (len(off) + len(adj)) * 4 % 8; pad != 0 {
			buf.Write(make([]byte, 8-pad))
		}
		return buf.Bytes()
	}
	cases := []struct {
		name   string
		n      int
		off    []int32
		adj    []int32
		want   string
		atOpen bool // rejected by OpenMapped itself vs by VerifyStructure
	}{
		{"self-loop", 2, []int32{0, 1, 2}, []int32{0, 0}, "self-loop", false},
		{"unsorted row", 3, []int32{0, 2, 3, 4}, []int32{2, 1, 0, 0}, "strictly increasing", false},
		{"duplicate neighbor", 3, []int32{0, 2, 3, 4}, []int32{1, 1, 0, 0}, "strictly increasing", false},
		{"decreasing offsets", 2, []int32{0, 2, 1}, []int32{1}, "offsets decrease", true},
		{"bad first offset", 1, []int32{1, 0}, nil, "payload rejected", true},
		{"neighbor out of range", 2, []int32{0, 1, 2}, []int32{5, 0}, "kwcsr payload rejected", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := OpenMapped(writeTempContainer(t, craft(tc.n, tc.off, tc.adj)))
			if tc.atOpen {
				if err == nil {
					m.Close()
					t.Fatal("offset-invalid container accepted at open")
				}
			} else {
				if err != nil {
					t.Fatalf("row-content corruption should defer to VerifyStructure, open rejected: %v", err)
				}
				defer m.Close()
				err = m.VerifyStructure()
				if err == nil {
					t.Fatal("structurally invalid container passed VerifyStructure")
				}
				// Memoized: the second call must return the same verdict.
				if err2 := m.VerifyStructure(); err2 == nil || err2.Error() != err.Error() {
					t.Fatalf("VerifyStructure not memoized: first %v, second %v", err, err2)
				}
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestMappedLazyDigest pins the trust split: a tampered digest FIELD opens
// fine (the open path never hashes) and is caught by VerifyDigest.
func TestMappedLazyDigest(t *testing.T) {
	base := validContainer(t)
	tampered := append([]byte(nil), base...)
	tampered[40] ^= 1
	m, err := OpenMapped(writeTempContainer(t, tampered))
	if err != nil {
		t.Fatalf("open rejects by digest, should defer: %v", err)
	}
	defer m.Close()
	if err := m.VerifyDigest(); err == nil {
		t.Fatal("VerifyDigest accepted a tampered digest field")
	}
}

// TestMappedLifetime exercises the reference counting that pins the mapping
// across concurrent use: Close with a Retain outstanding must keep the graph
// readable until the Release; double Close errors; Retain after the last
// reference fails.
func TestMappedLifetime(t *testing.T) {
	g, err := gen.GNP(128, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinaryCSR(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(writeTempContainer(t, buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Retain() {
		t.Fatal("Retain on an open handle failed")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// The solve-in-flight window: owner closed, one reference outstanding.
	// Touch every byte of the CSR — an unmapped page would fault here.
	off, adj := m.Graph().CSR()
	var sum int64
	for _, o := range off {
		sum += int64(o)
	}
	for _, u := range adj {
		sum += int64(u)
	}
	if sum == 0 && g.M() > 0 {
		t.Fatal("mapped CSR read as all zeros")
	}
	if err := m.Close(); err == nil {
		t.Fatal("double Close accepted")
	}
	m.Release()
	if m.Retain() {
		t.Fatal("Retain succeeded after the last reference dropped")
	}
}

// TestStreamingReaderFailClosed: a header declaring counts far beyond the
// source's actual size must be rejected by the size check — for sources
// that expose their size — rather than allocating count-derived arrays.
func TestStreamingReaderFailClosed(t *testing.T) {
	base := validContainer(t)
	huge := append([]byte(nil), base...)
	binary.LittleEndian.PutUint64(huge[8:16], 1<<29) // n: ~2 GiB of offsets
	binary.LittleEndian.PutUint64(huge[16:24], 1<<30)

	if _, _, err := ReadBinaryCSR(bytes.NewReader(huge)); err == nil || !strings.Contains(err.Error(), "shorter than") {
		t.Fatalf("bytes.Reader: got %v, want prompt fail-closed rejection", err)
	}
	f, err := os.Open(writeTempContainer(t, huge))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, _, err := ReadBinaryCSRTrusted(f); err == nil || !strings.Contains(err.Error(), "shorter than") {
		t.Fatalf("os.File: got %v, want prompt fail-closed rejection", err)
	}
}
