package graphio

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"kwmds/internal/gen"
	"kwmds/internal/graph"
)

func binaryGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	mk := func(g *graph.Graph, err error) *graph.Graph {
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	return map[string]*graph.Graph{
		"empty":      graph.MustNew(0, nil),
		"singleton":  graph.MustNew(1, nil),
		"isolated-5": graph.MustNew(5, nil),
		"path-2":     graph.MustNew(2, [][2]int{{0, 1}}),
		"gnp-150":    mk(gen.GNP(150, 0.05, 301)),
		"udg-400":    mk(gen.UnitDisk(400, 0.08, 302)),
		"grid-17x9":  mk(gen.Grid(17, 9)),
		"tree-333":   mk(gen.RandomTree(333, 303)),
	}
}

// TestBinaryCSRRoundTrip: write → read must reproduce the graph exactly —
// digest equality is the contract the serve path relies on — with and
// without a weight vector.
func TestBinaryCSRRoundTrip(t *testing.T) {
	for name, g := range binaryGraphs(t) {
		t.Run(name, func(t *testing.T) {
			for _, withWeights := range []bool{false, true} {
				var weights []float64
				if withWeights {
					weights = make([]float64, g.N())
					for i := range weights {
						weights[i] = 1 + float64(i%9)/4
					}
				}
				var buf bytes.Buffer
				if err := WriteBinaryCSR(&buf, g, weights); err != nil {
					t.Fatal(err)
				}
				got, gotW, err := ReadBinaryCSR(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("weights=%v: %v", withWeights, err)
				}
				if Digest(got) != Digest(g) {
					t.Fatalf("weights=%v: digest changed across round trip", withWeights)
				}
				if got.N() != g.N() || got.M() != g.M() || got.MaxDegree() != g.MaxDegree() {
					t.Fatalf("shape changed: n=%d m=%d maxdeg=%d", got.N(), got.M(), got.MaxDegree())
				}
				if withWeights != (gotW != nil) {
					t.Fatalf("weights presence: wrote %v, read %v", withWeights, gotW != nil)
				}
				for i := range gotW {
					if gotW[i] != weights[i] {
						t.Fatalf("weight[%d] = %v, wrote %v", i, gotW[i], weights[i])
					}
				}
			}
		})
	}
}

func TestWriteBinaryCSRValidation(t *testing.T) {
	if err := WriteBinaryCSR(&bytes.Buffer{}, nil, nil); err == nil {
		t.Error("nil graph accepted")
	}
	g := graph.MustNew(3, [][2]int{{0, 1}})
	if err := WriteBinaryCSR(&bytes.Buffer{}, g, []float64{1}); err == nil {
		t.Error("short weight vector accepted")
	}
}

// validContainer builds a known-good container to corrupt.
func validContainer(t *testing.T) []byte {
	t.Helper()
	g, err := gen.GNP(64, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinaryCSR(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinaryCSRRejection drives every rejection path: each corruption must
// fail loudly with a diagnosable error, never load a wrong graph.
func TestBinaryCSRRejection(t *testing.T) {
	base := validContainer(t)
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), base...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want string // error substring
	}{
		{"empty", nil, "truncated"},
		{"truncated header", base[:17], "truncated"},
		{"bad magic", mut(func(b []byte) { b[0] = 'X' }), "bad magic"},
		{"wrong version", mut(func(b []byte) { binary.LittleEndian.PutUint16(b[6:8], 9) }), "version 9"},
		{"unknown flags", mut(func(b []byte) { b[24] = 0xFF }), "unknown flags"},
		{"overflowing n", mut(func(b []byte) { binary.LittleEndian.PutUint64(b[8:16], 1<<40) }), "exceed limit"},
		{"overflowing e", mut(func(b []byte) { binary.LittleEndian.PutUint64(b[16:24], 1<<62) }), "exceed limit"},
		{"truncated payload", base[:len(base)-5], "declares"},
		{"trailing garbage", append(append([]byte(nil), base...), 0, 0, 0), "declares"},
		{"digest tampered", mut(func(b []byte) { b[40] ^= 1 }), "digest mismatch"},
		{"payload tampered", mut(func(b []byte) { b[len(b)-1] ^= 1 }), ""}, // any rejection is fine
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadBinaryCSR(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt container accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestBinaryCSRStructuralRejection hand-crafts containers whose digests are
// valid over structurally bad arrays — the digest binds content, it must
// not launder invalid topology.
func TestBinaryCSRStructuralRejection(t *testing.T) {
	craft := func(n int, off, adj []int32) []byte {
		var buf bytes.Buffer
		var hdr [kwcsrHeaderSize]byte
		copy(hdr[0:6], kwcsrMagic)
		binary.LittleEndian.PutUint16(hdr[6:8], kwcsrVersion)
		binary.LittleEndian.PutUint64(hdr[8:16], uint64(n))
		binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(adj)))
		sum := csrDigest(n, off, adj)
		copy(hdr[32:64], sum[:])
		buf.Write(hdr[:])
		writeInt32LE(&buf, off)
		writeInt32LE(&buf, adj)
		if pad := (len(off) + len(adj)) * 4 % 8; pad != 0 {
			buf.Write(make([]byte, 8-pad))
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		n    int
		off  []int32
		adj  []int32
		want string
	}{
		{"self-loop", 2, []int32{0, 1, 2}, []int32{0, 0}, "self-loop"},
		{"unsorted row", 3, []int32{0, 2, 3, 4}, []int32{2, 1, 0, 0}, "strictly increasing"},
		{"duplicate neighbor", 3, []int32{0, 2, 3, 4}, []int32{1, 1, 0, 0}, "strictly increasing"},
		{"decreasing offsets", 2, []int32{0, 2, 1}, []int32{1}, "offsets decrease"},
		{"bad first offset", 1, []int32{1, 0}, nil, "offsets decrease"},
		{"neighbor out of range", 2, []int32{0, 1, 2}, []int32{5, 0}, "kwcsr payload rejected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := craft(tc.n, tc.off, tc.adj)
			_, _, err := ReadBinaryCSR(bytes.NewReader(data))
			if err == nil {
				t.Fatal("structurally invalid container accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestBinaryCSRTrusted pins the trusted reader's semantics: identical
// output on valid containers, identical structural rejection, but no digest
// recompute — a tampered digest field is the one corruption it admits.
func TestBinaryCSRTrusted(t *testing.T) {
	base := validContainer(t)
	g, _, err := ReadBinaryCSRTrusted(bytes.NewReader(base))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ReadBinaryCSR(bytes.NewReader(base))
	if err != nil {
		t.Fatal(err)
	}
	if Digest(g) != Digest(want) {
		t.Fatal("trusted read produced a different graph")
	}

	structural := append([]byte(nil), base...)
	structural = structural[:len(structural)-5] // truncate: structural checks still run
	if _, _, err := ReadBinaryCSRTrusted(bytes.NewReader(structural)); err == nil {
		t.Error("trusted read accepted a truncated container")
	}

	tampered := append([]byte(nil), base...)
	tampered[40] ^= 1 // digest field only; payload untouched
	if _, _, err := ReadBinaryCSR(bytes.NewReader(tampered)); err == nil {
		t.Error("verifying read accepted a tampered digest")
	}
	g2, _, err := ReadBinaryCSRTrusted(bytes.NewReader(tampered))
	if err != nil {
		t.Errorf("trusted read rejects by digest: %v", err)
	}
	if g2 == nil || Digest(g2) != Digest(want) {
		t.Error("trusted read of an intact payload changed the graph")
	}
}

// FuzzBinaryCSR: arbitrary bytes must never panic the reader, and every
// successfully read graph must round-trip back to an equal digest.
func FuzzBinaryCSR(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(kwcsrMagic))
	seed := validContainerBytes()
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	tampered := append([]byte(nil), seed...)
	tampered[40] ^= 1
	f.Add(tampered)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Mapped-path lockstep: open + VerifyStructure must accept exactly
		// what the trusted streaming reader accepts (both skip the digest
		// recompute, both reject structural and size corruption — the
		// mapped path merely splits the row checks into the deferred
		// VerifyStructure), and on acceptance produce the same graph.
		// Neither may panic.
		tg, tw, terr := ReadBinaryCSRTrusted(bytes.NewReader(data))
		m, merr := parseMappedBytes(append([]byte(nil), data...))
		if merr == nil && m.VerifyStructure() != nil {
			merr = m.VerifyStructure()
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			m = nil
		}
		if (terr == nil) != (merr == nil) {
			t.Fatalf("trusted/mapped disagree: trusted err=%v, mapped err=%v", terr, merr)
		}
		if merr == nil {
			if Digest(m.Graph()) != Digest(tg) {
				t.Fatal("mapped graph differs from trusted read")
			}
			if (m.Weights() == nil) != (tw == nil) || len(m.Weights()) != len(tw) {
				t.Fatalf("mapped weights shape %d differs from trusted %d", len(m.Weights()), len(tw))
			}
			for i := range tw {
				if m.Weights()[i] != tw[i] {
					t.Fatalf("mapped weight[%d] = %v, trusted %v", i, m.Weights()[i], tw[i])
				}
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
		}

		g, weights, err := ReadBinaryCSR(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinaryCSR(&buf, g, weights); err != nil {
			t.Fatalf("re-encoding a successfully read graph failed: %v", err)
		}
		g2, _, err := ReadBinaryCSR(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading a re-encoded graph failed: %v", err)
		}
		if Digest(g2) != Digest(g) {
			t.Fatal("round trip changed the digest")
		}
	})
}

// validContainerBytes is validContainer without the *testing.T (fuzz seeds
// run outside a test context).
func validContainerBytes() []byte {
	g, err := gen.GNP(32, 0.1, 7)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := WriteBinaryCSR(&buf, g, nil); err != nil {
		panic(err)
	}
	return buf.Bytes()
}
