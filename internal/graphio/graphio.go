// Package graphio reads and writes graphs in two formats:
//
//   - a plain edge-list text format: an optional header line "n <count>",
//     one "u v" pair per line, '#' comments and blank lines ignored; and
//   - a JSON format carrying the edge list plus free-form metadata, used by
//     the cmd tools to keep generator parameters next to the graph.
package graphio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"kwmds/internal/graph"
)

// WriteEdgeList writes g in the plain text format, including the "n" header
// so isolated vertices survive a round trip.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the plain text format. The "n" header, when present,
// must appear exactly once and before any edge; vertices referenced by
// edges must fit in the declared count. Without a header, n is inferred as
// max vertex id + 1. Malformed lines are rejected with their line number.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	n := -1
	var edges [][2]int
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" {
			if n >= 0 {
				return nil, fmt.Errorf("graphio: line %d: duplicate \"n\" header (already declared n=%d)", lineNo, n)
			}
			if len(edges) > 0 {
				return nil, fmt.Errorf("graphio: line %d: \"n\" header after %d edge lines (header must come first)", lineNo, len(edges))
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graphio: line %d: malformed header %q", lineNo, line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("graphio: line %d: bad vertex count %q", lineNo, fields[1])
			}
			n = v
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graphio: line %d: expected \"u v\", got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad vertex %q", lineNo, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad vertex %q", lineNo, fields[1])
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graphio: line %d: negative vertex id in edge (%d,%d)", lineNo, u, v)
		}
		if n >= 0 && (u >= n || v >= n) {
			return nil, fmt.Errorf("graphio: line %d: edge (%d,%d) out of range for declared n=%d", lineNo, u, v, n)
		}
		edges = append(edges, [2]int{u, v})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: read: %w", err)
	}
	if n < 0 {
		n = maxID + 1
	}
	g, err := graph.New(n, edges)
	if err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return g, nil
}

// JSONGraph is the JSON representation: vertex count, canonical edge list,
// and optional metadata (generator name, parameters, seed, …).
type JSONGraph struct {
	N        int               `json:"n"`
	Edges    [][2]int          `json:"edges"`
	Metadata map[string]string `json:"metadata,omitempty"`
}

// WriteJSON writes g with the given metadata.
func WriteJSON(w io.Writer, g *graph.Graph, metadata map[string]string) error {
	enc := json.NewEncoder(w)
	return enc.Encode(JSONGraph{N: g.N(), Edges: g.Edges(), Metadata: metadata})
}

// ReadJSON parses the JSON format, returning the graph and its metadata.
func ReadJSON(r io.Reader) (*graph.Graph, map[string]string, error) {
	var jg JSONGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, nil, fmt.Errorf("graphio: json: %w", err)
	}
	g, err := graph.New(jg.N, jg.Edges)
	if err != nil {
		return nil, nil, fmt.Errorf("graphio: json: %w", err)
	}
	return g, jg.Metadata, nil
}
