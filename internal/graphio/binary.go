package graphio

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"io"
	"math"
	"os"

	"kwmds/internal/graph"
)

// The kwcsr binary container stores a graph's canonical CSR form verbatim,
// so loading is a validated copy instead of a parse: no tokenizing, no edge
// sorting, no CSR rebuild. Layout (all integers little-endian):
//
//	offset  size  field
//	     0     6  magic "kwcsr\x00"
//	     6     2  version (uint16, currently 1)
//	     8     8  n (uint64, vertex count)
//	    16     8  e (uint64, adjacency entries = 2·edges)
//	    24     8  flags (uint64, bit 0 = weights present)
//	    32    32  raw SHA-256 of (n, off, adj) — the same bytes Digest hashes
//	    64  (n+1)·4  off, int32 LE
//	     …   e·4  adj, int32 LE
//	     …   0–4  zero padding to the next 8-byte boundary
//	     …   n·8  weights, float64 LE (only when flags bit 0 is set)
//
// The embedded digest binds the topology: ReadBinaryCSR recomputes it and
// rejects mismatches, so bit rot and truncation cannot produce a silently
// wrong graph. It deliberately hashes exactly what Digest hashes — a .kwcsr
// file carries the digest topology-addressed caches key on, for free. The
// weight section sits outside it (weights are not topology); padding must
// be zero so no undigested topology byte is free to flip. Structural validation (monotonic offsets, strictly
// increasing adjacency rows, no self-loops) is enforced on read; symmetry
// is the writer's contract — WriteBinaryCSR only ever serializes *graph.Graph
// values, which are symmetric by construction, and the digest covers the
// arrays as written.

const (
	kwcsrMagic      = "kwcsr\x00"
	kwcsrVersion    = 1
	kwcsrHeaderSize = 64
	kwcsrHasWeights = 1 << 0
)

// WriteBinaryCSR serializes g (and an optional per-vertex weight vector,
// which must have length n or be nil) into the kwcsr container.
func WriteBinaryCSR(w io.Writer, g *graph.Graph, weights []float64) error {
	if g == nil {
		return fmt.Errorf("graphio: nil graph")
	}
	n := g.N()
	if weights != nil && len(weights) != n {
		return fmt.Errorf("graphio: %d weights for %d vertices", len(weights), n)
	}
	off, adj := g.CSR()
	var hdr [kwcsrHeaderSize]byte
	copy(hdr[0:6], kwcsrMagic)
	binary.LittleEndian.PutUint16(hdr[6:8], kwcsrVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(n))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(adj)))
	var flags uint64
	if weights != nil {
		flags |= kwcsrHasWeights
	}
	binary.LittleEndian.PutUint64(hdr[24:32], flags)
	sum := csrDigest(n, off, adj)
	copy(hdr[32:64], sum[:])
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeInt32LE(w, off); err != nil {
		return err
	}
	if err := writeInt32LE(w, adj); err != nil {
		return err
	}
	pad := (len(off) + len(adj)) * 4 % 8
	if pad != 0 {
		if _, err := w.Write(make([]byte, 8-pad)); err != nil {
			return err
		}
	}
	if weights != nil {
		buf := make([]byte, 0, 64<<10)
		for _, x := range weights {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
			if len(buf) == cap(buf) {
				if _, err := w.Write(buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		if len(buf) > 0 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeInt32LE streams xs little-endian through a chunk buffer (one Write
// per 64 KiB, mirroring writeInt32s on the digest side).
func writeInt32LE(w io.Writer, xs []int32) error {
	buf := make([]byte, 0, 64<<10)
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
		if len(buf) == cap(buf) {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinaryCSR deserializes a kwcsr container, validating structure and
// verifying the embedded digest against the payload. The returned weight
// slice is nil when the container carries none.
func ReadBinaryCSR(r io.Reader) (*graph.Graph, []float64, error) {
	return readBinaryCSR(r, true)
}

// ReadBinaryCSRTrusted deserializes a kwcsr container without recomputing
// the embedded SHA-256 (which dominates decode time on million-vertex
// containers). Every structural validation still runs — a trusted read can
// never produce a graph that violates CSR invariants, only one whose bytes
// were altered consistently. Use it when the caller verifies the digest
// itself or the container comes from a trusted producer in the same
// process; everything long-lived (serve preload, bench graph sets) takes
// the verifying ReadBinaryCSR.
func ReadBinaryCSRTrusted(r io.Reader) (*graph.Graph, []float64, error) {
	return readBinaryCSR(r, false)
}

func readBinaryCSR(r io.Reader, verify bool) (*graph.Graph, []float64, error) {
	var hdr [kwcsrHeaderSize]byte
	if got, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("graphio: kwcsr container truncated: %d bytes, header is %d", got, kwcsrHeaderSize)
	}
	if string(hdr[0:6]) != kwcsrMagic {
		return nil, nil, fmt.Errorf("graphio: not a kwcsr container (bad magic %q)", hdr[0:6])
	}
	if v := binary.LittleEndian.Uint16(hdr[6:8]); v != kwcsrVersion {
		return nil, nil, fmt.Errorf("graphio: unsupported kwcsr version %d (want %d)", v, kwcsrVersion)
	}
	n64 := binary.LittleEndian.Uint64(hdr[8:16])
	e64 := binary.LittleEndian.Uint64(hdr[16:24])
	flags := binary.LittleEndian.Uint64(hdr[24:32])
	if flags&^uint64(kwcsrHasWeights) != 0 {
		return nil, nil, fmt.Errorf("graphio: kwcsr container has unknown flags %#x", flags)
	}
	// Counts are validated before any size arithmetic: each bound keeps the
	// products below, computed in int, far from overflow — and decoding
	// streams through a fixed chunk, so a hostile header cannot balloon
	// memory beyond the arrays its own byte count admits.
	const maxCount = 1 << 31
	if n64 >= maxCount || e64 >= maxCount {
		return nil, nil, fmt.Errorf("graphio: kwcsr counts n=%d e=%d exceed limit %d", n64, e64, maxCount)
	}
	n, e := int(n64), int(e64)
	want, pad := containerSize(n, e, flags)
	truncated := func(err error) (*graph.Graph, []float64, error) {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, nil, fmt.Errorf("graphio: kwcsr container is shorter than the %d bytes its header declares", want)
		}
		return nil, nil, fmt.Errorf("graphio: reading kwcsr container: %w", err)
	}
	// Fail closed before allocating: the arrays below are sized from the
	// header's counts, so when the source can report its size (files,
	// bytes/strings readers), a container shorter than its header declares
	// is rejected here — O(1) — instead of after an O(n+e) allocation that a
	// hostile header could size at gigabytes backed by a kilobyte file.
	if sz, ok := sourceSize(r); ok && sz < int64(want) {
		return truncated(io.ErrUnexpectedEOF)
	}

	// Decode streams the payload through a cache-sized chunk instead of
	// buffering the whole container: the bytes are touched once while hot
	// (hash + int32 conversion both read the chunk, not the file image),
	// which on large containers removes a full memory pass and the
	// container-sized allocation.
	cr := chunkReader{r: r, buf: make([]byte, 128<<10)}
	var digest hash.Hash
	if verify {
		digest = sha256.New()
		digest.Write(hdr[8:16])
		cr.h = digest
	}
	off := make([]int32, n+1)
	if err := cr.int32s(off); err != nil {
		return truncated(err)
	}
	maxDeg := 0
	for v := 0; v < n; v++ {
		if off[v] > off[v+1] {
			return nil, nil, fmt.Errorf("graphio: kwcsr offsets decrease at vertex %d", v)
		}
		if d := int(off[v+1] - off[v]); d > maxDeg {
			maxDeg = d
		}
	}
	if off[0] != 0 || int(off[n]) != e {
		return nil, nil, fmt.Errorf("graphio: kwcsr payload rejected: offsets span [%d,%d], want [0,%d]", off[0], off[n], e)
	}
	// Decode and validate the adjacency in one fused pass while each chunk
	// is cache-hot: rows must be strictly increasing (sorted,
	// duplicate-free), in range, with no self-loops — every producer of
	// canonical CSR guarantees it and downstream kernels assume it. The
	// offsets are already proven monotonic over [0, e], so the running row
	// cursor cannot escape adj. A content error is remembered rather than
	// aborting the stream, so a truncated container still reports
	// truncation first, exactly as a buffer-everything reader would.
	adj := make([]int32, e)
	var badContent error
	v, prev := 0, int32(-1)
	// rowFail reproduces the element-order, condition-order diagnostics of a
	// straightforward one-at-a-time validator; it only runs on the error
	// path, keeping the fast path's combined predicate branch-cheap.
	rowFail := func(i int, u, prev, vv int32) error {
		if u == vv {
			return fmt.Errorf("graphio: kwcsr self-loop at vertex %d", v)
		}
		if u <= prev {
			return fmt.Errorf("graphio: kwcsr adjacency row of vertex %d is not strictly increasing", v)
		}
		return fmt.Errorf("graphio: kwcsr payload rejected: adj[%d] = %d out of range [0,%d)", i, u, n)
	}
	err := cr.chunked(e*4, func(chunk []byte, base int) {
		if badContent != nil {
			return
		}
		// Decode and validate in one pairwise pass while the chunk is
		// cache-hot: rows must be strictly increasing (sorted,
		// duplicate-free), in range, with no self-loops — every producer of
		// canonical CSR guarantees it and downstream kernels assume it. The
		// row end is hoisted out of the inner loop (offsets are already
		// proven monotonic over [0, e], so the cursor cannot escape adj),
		// and prev survives a row straddling a chunk boundary because v
		// only advances here. Per pair, range is checked on u1 alone:
		// prev < u0 < u1 < n pins u0, and prev ≥ -1 pins both non-negative
		// (the unsigned compare catches a negative u1).
		i0 := base / 4
		hi := i0 + len(chunk)/4
		for i := i0; i < hi; {
			for i >= int(off[v+1]) {
				v++
				prev = -1
			}
			rowEnd := int(off[v+1])
			if rowEnd > hi {
				rowEnd = hi
			}
			vv := int32(v)
			for ; i+2 <= rowEnd; i += 2 {
				x := binary.LittleEndian.Uint64(chunk[(i-i0)*4:])
				u0, u1 := int32(uint32(x)), int32(x>>32)
				adj[i], adj[i+1] = u0, u1
				if u0 <= prev || u1 <= u0 || uint32(u1) >= uint32(n) || u0 == vv || u1 == vv {
					if u0 == vv || u0 <= prev || uint32(u0) >= uint32(n) {
						badContent = rowFail(i, u0, prev, vv)
					} else {
						badContent = rowFail(i+1, u1, u0, vv)
					}
					return
				}
				prev = u1
			}
			if i < rowEnd {
				u := int32(binary.LittleEndian.Uint32(chunk[(i-i0)*4:]))
				adj[i] = u
				if u == vv || u <= prev || uint32(u) >= uint32(n) {
					badContent = rowFail(i, u, prev, vv)
					return
				}
				prev = u
				i++
			}
		}
	})
	if err != nil {
		return truncated(err)
	}
	if badContent != nil {
		return nil, nil, badContent
	}
	cr.h = nil // padding and weights sit outside the digest
	// Padding is part of the format: it must be zero, so every byte of a
	// valid container is accounted for (the digest cannot cover it, it is
	// written after the digested arrays).
	var padBuf [8]byte
	if _, err := io.ReadFull(r, padBuf[:pad]); err != nil {
		return truncated(err)
	}
	for _, b := range padBuf[:pad] {
		if b != 0 {
			return nil, nil, fmt.Errorf("graphio: kwcsr padding bytes are not zero")
		}
	}
	var weights []float64
	if flags&kwcsrHasWeights != 0 {
		weights = make([]float64, n)
		if err := cr.float64s(weights); err != nil {
			return truncated(err)
		}
	}
	var one [1]byte
	if _, err := io.ReadFull(r, one[:]); err != io.EOF {
		return nil, nil, fmt.Errorf("graphio: kwcsr container is longer than the %d bytes its header declares", want)
	}
	if verify {
		// The digested byte stream (n LE, off LE, adj LE) is exactly the
		// container's n field plus its array payload, hashed chunk by chunk
		// above — no re-encoding of the decoded arrays.
		var sum [sha256.Size]byte
		digest.Sum(sum[:0])
		if [sha256.Size]byte(hdr[32:64]) != sum {
			return nil, nil, fmt.Errorf("graphio: kwcsr digest mismatch: container corrupt or hand-edited")
		}
	}
	// The loops above checked everything FromCSR would (span, monotonic
	// offsets, adjacency range) and computed ∆ along the way.
	return graph.FromCSRUnchecked(off, adj, maxDeg), weights, nil
}

// chunkReader streams fixed-size chunks from r, decoding each while it is
// cache-hot and (when h is set) folding it into the digest on the way.
type chunkReader struct {
	r   io.Reader
	buf []byte // length a multiple of 8
	h   hash.Hash
}

func (c *chunkReader) chunked(total int, decode func(chunk []byte, base int)) error {
	for done := 0; done < total; {
		k := len(c.buf)
		if rem := total - done; rem < k {
			k = rem
		}
		if _, err := io.ReadFull(c.r, c.buf[:k]); err != nil {
			return err
		}
		if c.h != nil {
			c.h.Write(c.buf[:k])
		}
		decode(c.buf[:k], done)
		done += k
	}
	return nil
}

func (c *chunkReader) int32s(out []int32) error {
	return c.chunked(len(out)*4, func(chunk []byte, base int) {
		o := out[base/4:]
		for i := 0; i < len(chunk)/4; i++ {
			o[i] = int32(binary.LittleEndian.Uint32(chunk[i*4:]))
		}
	})
}

func (c *chunkReader) float64s(out []float64) error {
	return c.chunked(len(out)*8, func(chunk []byte, base int) {
		o := out[base/8:]
		for i := 0; i < len(chunk)/8; i++ {
			o[i] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[i*8:]))
		}
	})
}

// weightBytes is the size of the optional weights section.
func weightBytes(flags uint64, n int) int {
	if flags&kwcsrHasWeights != 0 {
		return n * 8
	}
	return 0
}

// containerSize returns the exact byte size a kwcsr container with the given
// header counts occupies, and its pad byte count — the single source of
// truth for the streaming readers' truncation checks and the mapped reader's
// fail-closed bounds check.
func containerSize(n, e int, flags uint64) (want, pad int) {
	body := (n + 1 + e) * 4
	want = kwcsrHeaderSize + body
	if rem := body % 8; rem != 0 {
		pad = 8 - rem
		want += pad
	}
	want += weightBytes(flags, n)
	return want, pad
}

// sourceSize reports the total size of a reader's backing source when it
// exposes one: os.File via Stat, bytes.Reader/strings.Reader via Size. Both
// report the source's full extent rather than the unread remainder, so the
// check using it is conservative — it can only reject containers that are
// certainly short, never valid ones.
func sourceSize(r io.Reader) (int64, bool) {
	switch s := r.(type) {
	case interface{ Size() int64 }:
		return s.Size(), true
	case interface{ Stat() (os.FileInfo, error) }:
		st, err := s.Stat()
		if err != nil || !st.Mode().IsRegular() {
			return 0, false
		}
		return st.Size(), true
	}
	return 0, false
}
