//go:build linux

package graphio

import (
	"io"
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The second return reports whether
// the bytes are an actual mapping (and must go back through unmapFile) or a
// heap copy.
//
// MAP_POPULATE prefaults the whole mapping inside the mmap call: the
// structural validation pass touches every page anyway, and one in-kernel
// population walk is far cheaper than ~size/4096 individual soft faults
// taken from the scan loop.
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	if size == 0 {
		// mmap(2) rejects zero-length mappings; an empty file can never be a
		// valid container, so hand the parser an empty slice to reject.
		return nil, false, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ,
		syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		// Filesystems without mmap support (some fuse/network mounts):
		// degrade to a plain read with identical semantics.
		data, err := io.ReadAll(f)
		return data, false, err
	}
	return data, true, nil
}

func unmapFile(data []byte) {
	syscall.Munmap(data)
}
