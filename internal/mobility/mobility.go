// Package mobility simulates node movement in ad-hoc networks — the
// scenario that motivates the paper's constant-round requirement ("the
// topology of an ad-hoc network is constantly changing", §1). It produces
// a sequence of unit-disk snapshots from a bounded random-walk model and
// measures how the elected dominating sets evolve across epochs.
package mobility

import (
	"fmt"
	"math"

	"kwmds/internal/gen"
	"kwmds/internal/graph"
	"kwmds/internal/stats"
)

// Trace is a sequence of topology snapshots of the same node population.
type Trace struct {
	// Graphs[e] is the unit-disk graph at epoch e.
	Graphs []*graph.Graph
	// Points[e] are the node positions at epoch e.
	Points [][]gen.Point
	// Radius is the radio range used for every snapshot.
	Radius float64
}

// RandomWalk generates `epochs` snapshots of n nodes in the unit square.
// Nodes start uniformly at random; between epochs every node moves by an
// independent uniform step in [-speed, speed]² and reflects at the borders.
// speed = 0 yields identical snapshots. The trace is a pure function of
// its parameters and seed.
func RandomWalk(n int, radius, speed float64, epochs int, seed int64) (*Trace, error) {
	// The range checks must reject NaN explicitly: NaN fails every
	// comparison, so `radius < 0` alone would let it through (and a NaN
	// coordinate would then spin the reflect loop forever).
	if math.IsNaN(radius) || math.IsInf(radius, 0) || math.IsNaN(speed) || math.IsInf(speed, 0) {
		return nil, fmt.Errorf("mobility: non-finite parameters radius=%v speed=%v", radius, speed)
	}
	if n < 0 || radius < 0 || speed < 0 || epochs < 1 {
		return nil, fmt.Errorf("mobility: invalid parameters n=%d radius=%v speed=%v epochs=%d",
			n, radius, speed, epochs)
	}
	rng := stats.NewRand(seed)
	pts := make([]gen.Point, n)
	for i := range pts {
		pts[i] = gen.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	tr := &Trace{Radius: radius}
	for e := 0; e < epochs; e++ {
		if e > 0 {
			for i := range pts {
				pts[i].X = reflect(pts[i].X + (2*rng.Float64()-1)*speed)
				pts[i].Y = reflect(pts[i].Y + (2*rng.Float64()-1)*speed)
			}
		}
		g, err := gen.UnitDiskFromPoints(pts, radius)
		if err != nil {
			return nil, err
		}
		snapshot := make([]gen.Point, n)
		copy(snapshot, pts)
		tr.Graphs = append(tr.Graphs, g)
		tr.Points = append(tr.Points, snapshot)
	}
	return tr, nil
}

// reflect folds a coordinate back into [0, 1].
func reflect(x float64) float64 {
	for x < 0 || x > 1 {
		if x < 0 {
			x = -x
		}
		if x > 1 {
			x = 2 - x
		}
	}
	return x
}

// Churn compares two elected sets over the same node population and
// reports how many members were kept, newly added, and removed.
func Churn(prev, cur []bool) (kept, added, removed int) {
	for v := range cur {
		switch {
		case cur[v] && v < len(prev) && prev[v]:
			kept++
		case cur[v]:
			added++
		case v < len(prev) && prev[v]:
			removed++
		}
	}
	return kept, added, removed
}

// EdgeDeltas diffs two snapshots of the same node population into the link
// events that turn a into b: edges only in b (added) and only in a
// (removed), each listed once with u < v in lexicographic order. This is
// the input the dynamic-graph engine consumes — a mobility epoch becomes
// one ApplyEdgeDeltas batch instead of a full rebuild. The diff walks the
// two sorted CSR adjacency lists directly, so it costs O(n + m) with no
// hashing.
func EdgeDeltas(a, b *graph.Graph) (added, removed [][2]int32) {
	n := a.N()
	if bn := b.N(); bn < n {
		n = bn
	}
	for v := 0; v < n; v++ {
		av, bv := a.Neighbors(v), b.Neighbors(v)
		i, j := 0, 0
		for i < len(av) || j < len(bv) {
			switch {
			case j == len(bv) || (i < len(av) && av[i] < bv[j]):
				if int(av[i]) > v {
					removed = append(removed, [2]int32{int32(v), av[i]})
				}
				i++
			case i == len(av) || bv[j] < av[i]:
				if int(bv[j]) > v {
					added = append(added, [2]int32{int32(v), bv[j]})
				}
				j++
			default:
				i++
				j++
			}
		}
	}
	// Vertices beyond the shared prefix exist in only one snapshot; their
	// edges are pure additions or removals (u < v emission above already
	// covered edges into the shared range from both sides).
	for v := n; v < a.N(); v++ {
		for _, u := range a.Neighbors(v) {
			if int(u) > v {
				removed = append(removed, [2]int32{int32(v), u})
			}
		}
	}
	for v := n; v < b.N(); v++ {
		for _, u := range b.Neighbors(v) {
			if int(u) > v {
				added = append(added, [2]int32{int32(v), u})
			}
		}
	}
	return added, removed
}

// EdgeChurn reports how many edges two snapshots share and how many are
// exclusive to each — a direct measure of topology change between epochs.
func EdgeChurn(a, b *graph.Graph) (shared, onlyA, onlyB int) {
	seen := make(map[[2]int]bool, a.M())
	for _, e := range a.Edges() {
		seen[e] = true
	}
	for _, e := range b.Edges() {
		if seen[e] {
			shared++
			delete(seen, e)
		} else {
			onlyB++
		}
	}
	onlyA = len(seen)
	return shared, onlyA, onlyB
}
