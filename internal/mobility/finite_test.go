package mobility

import (
	"math"
	"testing"
)

// TestRandomWalkRejectsNonFinite checks the NaN/Inf guards: with the old
// `< 0` comparisons a NaN radius or speed slipped through (NaN fails every
// comparison) and a NaN coordinate then hung the reflect loop forever.
func TestRandomWalkRejectsNonFinite(t *testing.T) {
	bads := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, bad := range bads {
		if _, err := RandomWalk(10, bad, 0.01, 2, 1); err == nil {
			t.Errorf("RandomWalk accepted radius=%v", bad)
		}
		if _, err := RandomWalk(10, 0.2, bad, 2, 1); err == nil {
			t.Errorf("RandomWalk accepted speed=%v", bad)
		}
	}
	if _, err := RandomWalk(10, 0.2, 0, 2, 1); err != nil {
		t.Errorf("RandomWalk rejected speed=0: %v", err)
	}
}
