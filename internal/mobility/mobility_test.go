package mobility

import (
	"math"
	"testing"

	"kwmds/internal/graph"
)

func TestRandomWalkValidation(t *testing.T) {
	cases := []struct {
		n      int
		r, s   float64
		epochs int
	}{
		{-1, 0.1, 0.1, 3},
		{10, -0.1, 0.1, 3},
		{10, 0.1, -0.1, 3},
		{10, 0.1, 0.1, 0},
	}
	for _, c := range cases {
		if _, err := RandomWalk(c.n, c.r, c.s, c.epochs, 1); err == nil {
			t.Errorf("RandomWalk(%+v) accepted", c)
		}
	}
}

func TestRandomWalkShape(t *testing.T) {
	tr, err := RandomWalk(100, 0.15, 0.05, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Graphs) != 5 || len(tr.Points) != 5 {
		t.Fatalf("epochs: %d graphs, %d point sets", len(tr.Graphs), len(tr.Points))
	}
	for e, g := range tr.Graphs {
		if g.N() != 100 {
			t.Errorf("epoch %d: n = %d", e, g.N())
		}
		// Geometry check: edges exactly match the distance predicate.
		pts := tr.Points[e]
		for i := 0; i < 100; i += 7 {
			for j := i + 1; j < 100; j += 3 {
				d := math.Hypot(pts[i].X-pts[j].X, pts[i].Y-pts[j].Y)
				if g.HasEdge(i, j) != (d <= 0.15) {
					t.Fatalf("epoch %d: edge(%d,%d)=%v but dist=%v", e, i, j, g.HasEdge(i, j), d)
				}
			}
		}
	}
}

func TestRandomWalkDeterminism(t *testing.T) {
	a, err := RandomWalk(60, 0.2, 0.08, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomWalk(60, 0.2, 0.08, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	for e := range a.Graphs {
		if a.Graphs[e].M() != b.Graphs[e].M() {
			t.Fatalf("epoch %d differs across identical traces", e)
		}
	}
}

func TestZeroSpeedFreezesTopology(t *testing.T) {
	tr, err := RandomWalk(80, 0.2, 0, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	m0 := tr.Graphs[0].M()
	for e, g := range tr.Graphs {
		if g.M() != m0 {
			t.Errorf("epoch %d: m = %d, want frozen %d", e, g.M(), m0)
		}
	}
	shared, onlyA, onlyB := EdgeChurn(tr.Graphs[0], tr.Graphs[3])
	if onlyA != 0 || onlyB != 0 || shared != m0 {
		t.Errorf("frozen trace churned: %d/%d/%d", shared, onlyA, onlyB)
	}
}

func TestMovementStaysInSquare(t *testing.T) {
	tr, err := RandomWalk(50, 0.1, 0.4, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	for e, pts := range tr.Points {
		for i, p := range pts {
			if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
				t.Fatalf("epoch %d node %d escaped: %+v", e, i, p)
			}
		}
	}
}

func TestReflect(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0.5, 0.5}, {-0.2, 0.2}, {1.3, 0.7}, {0, 0}, {1, 1}, {-1.5, 0.5}, {2.5, 0.5},
	}
	for _, tc := range tests {
		if got := reflect(tc.in); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("reflect(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestChurn(t *testing.T) {
	prev := []bool{true, true, false, false}
	cur := []bool{true, false, true, false}
	kept, added, removed := Churn(prev, cur)
	if kept != 1 || added != 1 || removed != 1 {
		t.Errorf("Churn = %d,%d,%d, want 1,1,1", kept, added, removed)
	}
	// Empty previous epoch: everything is an addition.
	kept, added, removed = Churn(nil, []bool{true, true})
	if kept != 0 || added != 2 || removed != 0 {
		t.Errorf("Churn from nil = %d,%d,%d", kept, added, removed)
	}
}

func TestEdgeChurn(t *testing.T) {
	a := graph.MustNew(4, [][2]int{{0, 1}, {1, 2}})
	b := graph.MustNew(4, [][2]int{{1, 2}, {2, 3}})
	shared, onlyA, onlyB := EdgeChurn(a, b)
	if shared != 1 || onlyA != 1 || onlyB != 1 {
		t.Errorf("EdgeChurn = %d,%d,%d, want 1,1,1", shared, onlyA, onlyB)
	}
}

func TestEdgeDeltas(t *testing.T) {
	a := graph.MustNew(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	b := graph.MustNew(5, [][2]int{{1, 2}, {2, 3}, {0, 4}})
	added, removed := EdgeDeltas(a, b)
	wantAdd := [][2]int32{{0, 4}, {2, 3}}
	wantRem := [][2]int32{{0, 1}, {3, 4}}
	if len(added) != len(wantAdd) || len(removed) != len(wantRem) {
		t.Fatalf("EdgeDeltas = +%v −%v, want +%v −%v", added, removed, wantAdd, wantRem)
	}
	for i := range wantAdd {
		if added[i] != wantAdd[i] {
			t.Errorf("added[%d] = %v, want %v", i, added[i], wantAdd[i])
		}
	}
	for i := range wantRem {
		if removed[i] != wantRem[i] {
			t.Errorf("removed[%d] = %v, want %v", i, removed[i], wantRem[i])
		}
	}
	// Identical snapshots: no deltas.
	if add, rem := EdgeDeltas(a, a); len(add)+len(rem) != 0 {
		t.Errorf("self diff = +%v −%v", add, rem)
	}
	// Consistency with EdgeChurn on a real trace step.
	tr, err := RandomWalk(120, 0.12, 0.03, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	add, rem := EdgeDeltas(tr.Graphs[0], tr.Graphs[1])
	_, onlyA, onlyB := EdgeChurn(tr.Graphs[0], tr.Graphs[1])
	if len(add) != onlyB || len(rem) != onlyA {
		t.Errorf("EdgeDeltas (+%d −%d) disagrees with EdgeChurn (+%d −%d)", len(add), len(rem), onlyB, onlyA)
	}
}
