package shard

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// TestInProcAllToAll drives an n-member group through many lockstep steps
// from concurrent goroutines (the way the sharded solver uses it) and checks
// every member receives exactly what each peer sent for that step. Run under
// -race this doubles as the exchange's data-race probe.
func TestInProcAllToAll(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		g := NewInProcGroup(n)
		const steps = 50
		var wg sync.WaitGroup
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ex := g.Member(i)
				if ex.Self() != i || ex.Members() != n {
					errs[i] = fmt.Errorf("member %d: bad identity", i)
					return
				}
				// Double-banked encode buffers, as the solver uses them.
				var banks [2][][]byte
				for b := range banks {
					banks[b] = make([][]byte, n)
				}
				for step := 0; step < steps; step++ {
					out := banks[step%2]
					for t2 := 0; t2 < n; t2++ {
						if t2 == i {
							continue
						}
						buf := out[t2][:0]
						buf = binary.LittleEndian.AppendUint32(buf, uint32(step))
						buf = binary.LittleEndian.AppendUint32(buf, uint32(i))
						buf = binary.LittleEndian.AppendUint32(buf, uint32(t2))
						out[t2] = buf
					}
					in, err := ex.Swap(out)
					if err != nil {
						errs[i] = err
						return
					}
					if in[i] != nil {
						errs[i] = fmt.Errorf("member %d step %d: self payload not nil", i, step)
						return
					}
					for t2 := 0; t2 < n; t2++ {
						if t2 == i {
							continue
						}
						p := in[t2]
						if len(p) != 12 {
							errs[i] = fmt.Errorf("member %d step %d: payload len %d", i, step, len(p))
							return
						}
						gotStep := binary.LittleEndian.Uint32(p)
						gotFrom := binary.LittleEndian.Uint32(p[4:])
						gotTo := binary.LittleEndian.Uint32(p[8:])
						if int(gotStep) != step || int(gotFrom) != t2 || int(gotTo) != i {
							errs[i] = fmt.Errorf("member %d step %d: got (%d,%d,%d)", i, step, gotStep, gotFrom, gotTo)
							return
						}
					}
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("n=%d member %d: %v", n, i, err)
			}
		}
	}
}

// TestInProcFailUnblocksPeers kills one member mid-step and asserts every
// other member's Swap returns the failure instead of hanging.
func TestInProcFailUnblocksPeers(t *testing.T) {
	const n = 4
	g := NewInProcGroup(n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ex := g.Member(i)
			out := make([][]byte, n)
			for {
				if _, err := ex.Swap(out); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	g.Fail(fmt.Errorf("member 0 exploded"))
	wg.Wait()
	for i := 1; i < n; i++ {
		if errs[i] == nil || errs[i].Error() != "member 0 exploded" {
			t.Fatalf("member %d: err = %v, want the reported failure", i, errs[i])
		}
	}
	// A member entering Swap after the failure errors immediately too.
	if _, err := g.Member(0).Swap(make([][]byte, n)); err == nil {
		t.Fatal("post-failure Swap succeeded")
	}
}

func TestInProcSingleMember(t *testing.T) {
	g := NewInProcGroup(1)
	ex := g.Member(0)
	in, err := ex.Swap(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 1 || in[0] != nil {
		t.Fatalf("1-member swap returned %v", in)
	}
}
