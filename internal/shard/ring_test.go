package shard

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("graph-%04d", i)
	}
	return keys
}

func TestRingDeterministicLookup(t *testing.T) {
	workers := []string{"w0", "w1", "w2", "w3", "w4"}
	a, err := NewRing(workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same members in a different construction order: identical placement.
	b, err := NewRing([]string{"w3", "w1", "w4", "w0", "w2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys(500) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("key %s: placement depends on construction order (%s vs %s)", k, a.Lookup(k), b.Lookup(k))
		}
		la, lb := a.LookupN(k, 3), b.LookupN(k, 3)
		if len(la) != 3 || len(lb) != 3 {
			t.Fatalf("key %s: LookupN returned %d/%d workers", k, len(la), len(lb))
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("key %s: replica list order differs", k)
			}
		}
	}
}

func TestRingLookupNDistinct(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys(200) {
		ws := r.LookupN(k, 10) // capped at member count
		if len(ws) != 3 {
			t.Fatalf("key %s: got %d workers, want 3", k, len(ws))
		}
		seen := map[string]bool{}
		for _, w := range ws {
			if seen[w] {
				t.Fatalf("key %s: duplicate worker %s", k, w)
			}
			seen[w] = true
		}
		if ws[0] != r.Lookup(k) {
			t.Fatalf("key %s: LookupN[0] != Lookup", k)
		}
	}
}

// TestRingPlacementStability is the satellite's core property: adding or
// removing one worker moves only the keys in that worker's arcs. With V
// virtual nodes per worker and W workers, the expected fraction moved is
// 1/(W±1); we assert a generous 2× bound so the test stays robust to hash
// luck while still catching a modulo-style rehash (which moves ~everything).
func TestRingPlacementStability(t *testing.T) {
	keys := ringKeys(4000)
	base := []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"}
	r0, err := NewRing(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r0.Lookup(k)
	}

	t.Run("add", func(t *testing.T) {
		r1, err := NewRing(append(append([]string(nil), base...), "w8"), 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			after := r1.Lookup(k)
			if after != before[k] {
				moved++
				// A key may only move TO the new worker.
				if after != "w8" {
					t.Fatalf("key %s moved %s→%s, not to the new worker", k, before[k], after)
				}
			}
		}
		bound := 2 * len(keys) / (len(base) + 1)
		if moved > bound {
			t.Fatalf("add moved %d/%d keys, bound %d", moved, len(keys), bound)
		}
		if moved == 0 {
			t.Fatal("add moved no keys: new worker owns nothing")
		}
	})

	t.Run("remove", func(t *testing.T) {
		r1, err := NewRing(base[:len(base)-1], 0) // drop w7
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			after := r1.Lookup(k)
			if after != before[k] {
				moved++
				// Only keys previously on the removed worker may move.
				if before[k] != "w7" {
					t.Fatalf("key %s moved %s→%s though its worker stayed", k, before[k], after)
				}
			}
		}
		bound := 2 * len(keys) / len(base)
		if moved > bound {
			t.Fatalf("remove moved %d/%d keys, bound %d", moved, len(keys), bound)
		}
	})
}

// TestRingBalance sanity-checks virtual-node spreading: no worker owns a
// wildly disproportionate share of keys.
func TestRingBalance(t *testing.T) {
	workers := []string{"a", "b", "c", "d"}
	r, err := NewRing(workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := ringKeys(8000)
	for _, k := range keys {
		counts[r.Lookup(k)]++
	}
	mean := len(keys) / len(workers)
	for _, w := range workers {
		if counts[w] < mean/3 || counts[w] > mean*3 {
			t.Fatalf("worker %s owns %d keys, mean %d: ring badly unbalanced", w, counts[w], mean)
		}
	}
}

func TestRingRejects(t *testing.T) {
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty worker name accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate worker accepted")
	}
	r, err := NewRing(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Lookup("k") != "" || r.LookupN("k", 2) != nil {
		t.Error("empty ring must return no workers")
	}
}
