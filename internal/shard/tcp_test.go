package shard

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// meshGroup spins up n mesh listeners on loopback and connects the full
// exchange mesh of one solve session.
func meshGroup(t *testing.T, solveID uint64, n int) []*TCPExchange {
	t.Helper()
	mls := make([]*MeshListener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		mls[i] = NewMeshListener(l)
		addrs[i] = mls[i].Addr()
		t.Cleanup(mls[i].Close)
	}
	exs := make([]*TCPExchange, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			exs[i], errs[i] = ConnectMesh(solveID, i, addrs, mls[i], 5*time.Second)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		t.Cleanup(exs[i].Close)
	}
	return exs
}

// TestTCPAllToAll mirrors the in-proc all-to-all test over a real loopback
// mesh: every member must receive exactly what each peer sent, step after
// step, including empty payloads.
func TestTCPAllToAll(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		exs := meshGroup(t, uint64(1000+n), n)
		const steps = 25
		var wg sync.WaitGroup
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ex := exs[i]
				out := make([][]byte, n)
				for step := 0; step < steps; step++ {
					for t2 := 0; t2 < n; t2++ {
						if t2 == i {
							continue
						}
						if step%5 == 4 {
							out[t2] = nil // empty payload step
							continue
						}
						buf := out[t2][:0]
						buf = binary.LittleEndian.AppendUint32(buf, uint32(step))
						buf = binary.LittleEndian.AppendUint32(buf, uint32(i))
						buf = binary.LittleEndian.AppendUint32(buf, uint32(t2))
						out[t2] = buf
					}
					in, err := ex.Swap(out)
					if err != nil {
						errs[i] = err
						return
					}
					for t2 := 0; t2 < n; t2++ {
						if t2 == i {
							continue
						}
						p := in[t2]
						if step%5 == 4 {
							if len(p) != 0 {
								errs[i] = fmt.Errorf("step %d: want empty payload, got %d bytes", step, len(p))
								return
							}
							continue
						}
						if len(p) != 12 ||
							binary.LittleEndian.Uint32(p) != uint32(step) ||
							binary.LittleEndian.Uint32(p[4:]) != uint32(t2) ||
							binary.LittleEndian.Uint32(p[8:]) != uint32(i) {
							errs[i] = fmt.Errorf("member %d step %d: bad payload from %d", i, step, t2)
							return
						}
					}
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("n=%d member %d: %v", n, i, err)
			}
		}
	}
}

// TestTCPPeerFailureUnblocks closes one member's connections mid-solve and
// asserts the peers' Swaps fail promptly instead of hanging until the
// timeout.
func TestTCPPeerFailureUnblocks(t *testing.T) {
	exs := meshGroup(t, 2000, 3)
	exs[0].Close()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 1; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := make([][]byte, 3)
			for {
				if _, err := exs[i].Swap(out); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < 3; i++ {
		if errs[i] == nil {
			t.Fatalf("member %d: Swap kept succeeding after peer death", i)
		}
	}
}

// TestMeshParking verifies a dialing peer that races ahead of the local
// solve request is parked and later claimed.
func TestMeshParking(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ml := NewMeshListener(l)
	defer ml.Close()

	// Peer 1 dials member 0 before member 0's session registers.
	conn, err := net.Dial("tcp", ml.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello [helloLen]byte
	copy(hello[:], helloMagic[:])
	binary.LittleEndian.PutUint64(hello[4:], 42)
	binary.LittleEndian.PutUint32(hello[12:], 1)
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}

	got, err := ml.await(42, 1, time.Now().Add(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	got.Close()

	// A handshake with the wrong magic is dropped, not parked.
	bad, err := net.Dial("tcp", ml.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	bad.Write([]byte("NOPEnopeNOPEnope"))
	if _, err := ml.await(7, 1, time.Now().Add(300*time.Millisecond)); err == nil {
		t.Fatal("bad handshake was admitted")
	}
}

// TestMeshSessionIsolation runs two solve sessions over the same listeners
// concurrently; handshake routing must never cross-deliver connections.
func TestMeshSessionIsolation(t *testing.T) {
	const n = 2
	mls := make([]*MeshListener, n)
	addrs := make([]string, n)
	for i := range mls {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		mls[i] = NewMeshListener(l)
		addrs[i] = mls[i].Addr()
		defer mls[i].Close()
	}
	var wg sync.WaitGroup
	for _, solveID := range []uint64{91, 92} {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(solveID uint64, i int) {
				defer wg.Done()
				ex, err := ConnectMesh(solveID, i, addrs, mls[i], 5*time.Second)
				if err != nil {
					t.Errorf("solve %d member %d: %v", solveID, i, err)
					return
				}
				defer ex.Close()
				out := make([][]byte, n)
				out[1-i] = binary.LittleEndian.AppendUint64(nil, solveID)
				in, err := ex.Swap(out)
				if err != nil {
					t.Errorf("solve %d member %d: %v", solveID, i, err)
					return
				}
				if got := binary.LittleEndian.Uint64(in[1-i]); got != solveID {
					t.Errorf("solve %d member %d: received session %d's payload", solveID, i, got)
				}
			}(solveID, i)
		}
	}
	wg.Wait()
}
