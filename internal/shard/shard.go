// Package shard provides the transport substrate of the sharded solve
// pipeline: the Exchange interface the per-shard fastpath driver runs
// against, an in-process channel implementation (the default), a
// length-prefixed binary implementation over TCP for multi-process worker
// meshes, and the consistent-hash ring the serve router places graphs with.
//
// The package sits below internal/fastpath in the dependency order — it
// knows nothing about solvers or graphs — so the engine stays oblivious to
// whether a shard boundary is a function call or a wire.
package shard

// Exchange is one shard's port onto the phase-barrier all-to-all swap. The
// sharded solver is lockstep by construction: every member performs the same
// sequence of Swap calls (the branch conditions that could diverge are
// piggybacked as global counters inside the payloads), so the step identity
// is implicit in the call order.
type Exchange interface {
	// Swap sends out[t] to member t (out[self] is ignored, and may be nil)
	// and returns the payloads received from every peer for the same step,
	// indexed by sender (in[self] is nil). Payload slices — sent and
	// received — are valid only until the member's next Swap call: senders
	// may reuse their encode buffers one step later, receivers must finish
	// decoding before swapping again.
	//
	// Swap returns an error when any member of the group has failed (see
	// implementations); after an error the exchange is dead and the caller
	// must abandon the solve.
	Swap(out [][]byte) ([][]byte, error)
	// Self returns this member's index in [0, Members()).
	Self() int
	// Members returns the group size.
	Members() int
}
