package shard

import (
	"fmt"
	"sync"
)

// InProcGroup is the in-process Exchange: one goroutine per shard, one
// buffered channel per directed pair. It is the default transport — sharded
// solves inside one process (the facade's Shards option, the serve
// subsystem's in-proc sharding) pay a channel handoff per peer per barrier
// and nothing else.
type InProcGroup struct {
	n  int
	ch [][]chan []byte // ch[from][to]

	failOnce sync.Once
	failed   chan struct{}
	mu       sync.Mutex
	failErr  error
}

// NewInProcGroup builds an exchange group for n members.
func NewInProcGroup(n int) *InProcGroup {
	g := &InProcGroup{n: n, failed: make(chan struct{})}
	g.ch = make([][]chan []byte, n)
	for i := range g.ch {
		g.ch[i] = make([]chan []byte, n)
		for j := range g.ch[i] {
			if i != j {
				// Capacity 1: lockstep admits at most one undelivered
				// payload per directed pair (a member one step ahead of a
				// peer that has sent but not yet drained).
				g.ch[i][j] = make(chan []byte, 1)
			}
		}
	}
	return g
}

// Member returns the Exchange port of member i.
func (g *InProcGroup) Member(i int) Exchange { return &inProcMember{g: g, self: i, in: make([][]byte, g.n)} }

// Fail marks the group dead: every member blocked in (or later entering)
// Swap returns an error instead of waiting forever on a peer that will
// never swap again. The first reported error wins.
func (g *InProcGroup) Fail(err error) {
	g.failOnce.Do(func() {
		g.mu.Lock()
		if err == nil {
			err = fmt.Errorf("shard: exchange member failed")
		}
		g.failErr = err
		g.mu.Unlock()
		close(g.failed)
	})
}

func (g *InProcGroup) err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.failErr != nil {
		return g.failErr
	}
	return fmt.Errorf("shard: exchange group failed")
}

type inProcMember struct {
	g    *InProcGroup
	self int
	in   [][]byte
}

func (m *inProcMember) Self() int    { return m.self }
func (m *inProcMember) Members() int { return m.g.n }

func (m *inProcMember) Swap(out [][]byte) ([][]byte, error) {
	g := m.g
	for t := 0; t < g.n; t++ {
		if t == m.self {
			continue
		}
		var payload []byte
		if out != nil {
			payload = out[t]
		}
		select {
		case g.ch[m.self][t] <- payload:
		case <-g.failed:
			return nil, g.err()
		}
	}
	m.in[m.self] = nil
	for t := 0; t < g.n; t++ {
		if t == m.self {
			continue
		}
		select {
		case m.in[t] = <-g.ch[t][m.self]:
		case <-g.failed:
			return nil, g.err()
		}
	}
	return m.in, nil
}
