package shard

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Wire format. Every exchange frame is
//
//	"KWSX" | step u8 | from u32 | len u32 | payload
//
// little-endian, mirroring the kwcsr binary container's conventions (magic
// prefix, fixed little-endian header, raw payload). The step byte is the
// lockstep call counter modulo 256 — not needed for correctness (TCP
// preserves order) but it turns a desynchronized peer into a loud framing
// error instead of silently corrupted halo state.
//
// A mesh connection opens with the handshake frame
//
//	"KWSH" | solveID u64 | from u32
//
// which routes the connection to the solve session it belongs to.
var (
	frameMagic = [4]byte{'K', 'W', 'S', 'X'}
	helloMagic = [4]byte{'K', 'W', 'S', 'H'}
)

const (
	frameHeaderLen = 13 // magic + step + from + len
	helloLen       = 16 // magic + solveID + from
	// maxFramePayload bounds a frame's payload; boundary exchanges are a few
	// bytes per boundary vertex, so anything near this limit is corruption.
	maxFramePayload = 1 << 30
	// parkTTL is how long an accepted mesh connection waits for its solve
	// session to register before being dropped.
	parkTTL = 30 * time.Second
)

// TCPExchange is the wire implementation of Exchange: one TCP connection per
// peer, one frame per peer per Swap. Writes fan out on goroutines and reads
// drain sequentially, so two members swapping large payloads at each other
// cannot deadlock on full kernel buffers.
type TCPExchange struct {
	self    int
	conns   []net.Conn // conns[t], nil at self
	in      [][]byte
	step    uint64
	timeout time.Duration

	closeOnce sync.Once
}

// Self and Members implement Exchange.
func (e *TCPExchange) Self() int    { return e.self }
func (e *TCPExchange) Members() int { return len(e.conns) }

// Close tears down every peer connection. Safe to call repeatedly; peers
// blocked in Swap observe read errors and abandon the solve.
func (e *TCPExchange) Close() {
	e.closeOnce.Do(func() {
		for _, c := range e.conns {
			if c != nil {
				c.Close()
			}
		}
	})
}

// Swap implements Exchange over the mesh.
func (e *TCPExchange) Swap(out [][]byte) ([][]byte, error) {
	step := byte(e.step)
	e.step++
	deadline := time.Now().Add(e.timeout)

	var wg sync.WaitGroup
	werrs := make([]error, len(e.conns))
	for t, c := range e.conns {
		if c == nil {
			continue
		}
		var payload []byte
		if out != nil {
			payload = out[t]
		}
		wg.Add(1)
		go func(t int, c net.Conn, payload []byte) {
			defer wg.Done()
			hdr := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
			copy(hdr, frameMagic[:])
			hdr[4] = step
			binary.LittleEndian.PutUint32(hdr[5:], uint32(e.self))
			binary.LittleEndian.PutUint32(hdr[9:], uint32(len(payload)))
			c.SetWriteDeadline(deadline)
			if _, err := c.Write(append(hdr, payload...)); err != nil {
				werrs[t] = fmt.Errorf("shard: write to peer %d: %w", t, err)
			}
		}(t, c, payload)
	}

	var rerr error
	for t, c := range e.conns {
		if c == nil {
			e.in[t] = nil
			continue
		}
		c.SetReadDeadline(deadline)
		var hdr [frameHeaderLen]byte
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			rerr = fmt.Errorf("shard: read from peer %d: %w", t, err)
			break
		}
		if [4]byte(hdr[:4]) != frameMagic {
			rerr = fmt.Errorf("shard: peer %d: bad frame magic", t)
			break
		}
		if hdr[4] != step {
			rerr = fmt.Errorf("shard: peer %d: step %d, want %d (lockstep broken)", t, hdr[4], step)
			break
		}
		if from := binary.LittleEndian.Uint32(hdr[5:]); int(from) != t {
			rerr = fmt.Errorf("shard: peer %d: frame claims sender %d", t, from)
			break
		}
		plen := binary.LittleEndian.Uint32(hdr[9:])
		if plen > maxFramePayload {
			rerr = fmt.Errorf("shard: peer %d: %d-byte frame exceeds limit", t, plen)
			break
		}
		buf := e.in[t]
		if cap(buf) < int(plen) {
			buf = make([]byte, plen)
		}
		buf = buf[:plen]
		if _, err := io.ReadFull(c, buf); err != nil {
			rerr = fmt.Errorf("shard: read from peer %d: %w", t, err)
			break
		}
		e.in[t] = buf
	}
	wg.Wait()
	if rerr == nil {
		for _, err := range werrs {
			if err != nil {
				rerr = err
				break
			}
		}
	}
	if rerr != nil {
		e.Close() // unblock peers: their reads fail instead of waiting out the deadline
		return nil, rerr
	}
	return e.in, nil
}

// parked is a mesh connection whose handshake arrived before its solve
// session registered.
type parked struct {
	conn net.Conn
	at   time.Time
}

type meshKey struct {
	solveID uint64
	from    int
}

// MeshListener accepts mesh connections on a listener and routes each —
// keyed by the handshake's (solveID, from) — to the solve session awaiting
// it. Connections for sessions that have not registered yet are parked
// briefly, since a dialing peer may race ahead of the local solve request.
type MeshListener struct {
	l net.Listener

	mu      sync.Mutex
	waiting map[meshKey]chan net.Conn
	parkedC map[meshKey]parked
	closed  bool
}

// NewMeshListener starts accepting mesh connections on l.
func NewMeshListener(l net.Listener) *MeshListener {
	ml := &MeshListener{
		l:       l,
		waiting: make(map[meshKey]chan net.Conn),
		parkedC: make(map[meshKey]parked),
	}
	go ml.acceptLoop()
	return ml
}

// Addr returns the listener's address (what peers dial).
func (ml *MeshListener) Addr() string { return ml.l.Addr().String() }

// Close stops accepting and drops every parked connection.
func (ml *MeshListener) Close() {
	ml.l.Close()
	ml.mu.Lock()
	defer ml.mu.Unlock()
	ml.closed = true
	for k, p := range ml.parkedC {
		p.conn.Close()
		delete(ml.parkedC, k)
	}
}

func (ml *MeshListener) acceptLoop() {
	for {
		conn, err := ml.l.Accept()
		if err != nil {
			return
		}
		go ml.admit(conn)
	}
}

func (ml *MeshListener) admit(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(parkTTL))
	var hello [helloLen]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil || [4]byte(hello[:4]) != helloMagic {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	key := meshKey{
		solveID: binary.LittleEndian.Uint64(hello[4:]),
		from:    int(binary.LittleEndian.Uint32(hello[12:])),
	}
	ml.mu.Lock()
	if ml.closed {
		ml.mu.Unlock()
		conn.Close()
		return
	}
	// Expire stale parked connections while we hold the lock.
	now := time.Now()
	for k, p := range ml.parkedC {
		if now.Sub(p.at) > parkTTL {
			p.conn.Close()
			delete(ml.parkedC, k)
		}
	}
	if ch, ok := ml.waiting[key]; ok {
		delete(ml.waiting, key)
		ml.mu.Unlock()
		ch <- conn // buffered
		return
	}
	if old, ok := ml.parkedC[key]; ok {
		old.conn.Close()
	}
	ml.parkedC[key] = parked{conn: conn, at: now}
	ml.mu.Unlock()
}

// await returns the connection handshaken with (solveID, from), waiting up
// to the deadline for it to arrive.
func (ml *MeshListener) await(solveID uint64, from int, deadline time.Time) (net.Conn, error) {
	key := meshKey{solveID: solveID, from: from}
	ml.mu.Lock()
	if p, ok := ml.parkedC[key]; ok {
		delete(ml.parkedC, key)
		ml.mu.Unlock()
		return p.conn, nil
	}
	ch := make(chan net.Conn, 1)
	ml.waiting[key] = ch
	ml.mu.Unlock()

	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case conn := <-ch:
		return conn, nil
	case <-timer.C:
		ml.mu.Lock()
		delete(ml.waiting, key)
		ml.mu.Unlock()
		// A connection may have been delivered while we timed out.
		select {
		case conn := <-ch:
			return conn, nil
		default:
		}
		return nil, fmt.Errorf("shard: timed out waiting for mesh peer %d (solve %d)", from, solveID)
	}
}

// ConnectMesh establishes the full exchange mesh of one solve session:
// member self dials every lower-indexed peer (addrs[t] for t < self, sending
// the handshake frame) and accepts a connection from every higher-indexed
// peer through ml. addrs[self] is ignored; len(addrs) is the group size.
// The returned exchange applies timeout to every subsequent Swap.
func ConnectMesh(solveID uint64, self int, addrs []string, ml *MeshListener, timeout time.Duration) (*TCPExchange, error) {
	n := len(addrs)
	if self < 0 || self >= n {
		return nil, fmt.Errorf("shard: mesh member %d of %d", self, n)
	}
	if n > 1 && ml == nil {
		return nil, fmt.Errorf("shard: nil mesh listener")
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	e := &TCPExchange{self: self, conns: make([]net.Conn, n), in: make([][]byte, n), timeout: timeout}
	deadline := time.Now().Add(timeout)
	for t := 0; t < self; t++ {
		conn, err := net.DialTimeout("tcp", addrs[t], time.Until(deadline))
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("shard: dial peer %d: %w", t, err)
		}
		var hello [helloLen]byte
		copy(hello[:], helloMagic[:])
		binary.LittleEndian.PutUint64(hello[4:], solveID)
		binary.LittleEndian.PutUint32(hello[12:], uint32(self))
		conn.SetWriteDeadline(deadline)
		if _, err := conn.Write(hello[:]); err != nil {
			conn.Close()
			e.Close()
			return nil, fmt.Errorf("shard: handshake with peer %d: %w", t, err)
		}
		conn.SetWriteDeadline(time.Time{})
		e.conns[t] = conn
	}
	for t := self + 1; t < n; t++ {
		conn, err := ml.await(solveID, t, deadline)
		if err != nil {
			e.Close()
			return nil, err
		}
		e.conns[t] = conn
	}
	return e, nil
}
