package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-worker virtual-node count of a Ring. 128
// points per worker keeps the expected load imbalance within a few percent
// for the worker counts a router realistically fronts.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over named workers. Keys (graph
// names) map to workers via the classic construction: every worker owns
// VirtualNodes points on a 64-bit circle, a key lands on the first point at
// or after its own hash. Adding or removing one worker therefore moves only
// the keys in that worker's arcs — placement of everything else is stable,
// which is what keeps worker-local caches warm across membership changes.
//
// Mutations build a new Ring (the router swaps the pointer atomically);
// lookups on a built ring are safe for concurrent use.
type Ring struct {
	vnodes  int
	workers []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	worker int32 // index into workers
}

// NewRing builds a ring over the given worker names. vnodes ≤ 0 selects
// DefaultVirtualNodes. Worker names must be unique and non-empty.
func NewRing(workers []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(workers))
	for _, w := range workers {
		if w == "" {
			return nil, fmt.Errorf("shard: ring: empty worker name")
		}
		if seen[w] {
			return nil, fmt.Errorf("shard: ring: duplicate worker %q", w)
		}
		seen[w] = true
	}
	r := &Ring{
		vnodes:  vnodes,
		workers: append([]string(nil), workers...),
		points:  make([]ringPoint, 0, len(workers)*vnodes),
	}
	for wi, w := range r.workers {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", w, v)), worker: int32(wi)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].worker < r.points[j].worker
	})
	return r, nil
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Workers returns the ring's member names (construction order).
func (r *Ring) Workers() []string { return r.workers }

// Lookup returns the worker owning key ("" for an empty ring).
func (r *Ring) Lookup(key string) string {
	ws := r.LookupN(key, 1)
	if len(ws) == 0 {
		return ""
	}
	return ws[0]
}

// LookupN returns up to n distinct workers for key, in ring order starting
// at the key's successor point: the placement list for an n-way replicated
// or n-way sharded graph. Deterministic for a given ring and key.
func (r *Ring) LookupN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.workers) {
		n = len(r.workers)
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		p := r.points[(i+scanned)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, r.workers[p.worker])
		}
	}
	return out
}
