package kwmds

import (
	"errors"
	"testing"

	"kwmds/internal/testsupport"
)

// TestReorderBitIdentical locks the core contract of the degree-ordered
// execution path at the facade level: attaching a ReorderedGraph changes
// memory traversal order only, never an output, for every algorithm the
// facade exposes — including ConnectedDominatingSet, whose connector
// stage runs over the original graph after the reordered pipeline.
func TestReorderBitIdentical(t *testing.T) {
	g, err := PrefAttach(400, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	rl := Reorder(g)
	solvers := []struct {
		name string
		run  func(Options) (*Result, error)
	}{
		{"kw", func(o Options) (*Result, error) { return DominatingSet(g, o) }},
		{"kwcds", func(o Options) (*Result, error) { return ConnectedDominatingSet(g, o) }},
	}
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				plain, err := s.run(Options{K: 3, Seed: seed, Sequential: true})
				if err != nil {
					t.Fatal(err)
				}
				reord, err := s.run(Options{K: 3, Seed: seed, Sequential: true, Reordered: rl})
				if err != nil {
					t.Fatal(err)
				}
				testsupport.RequireBitIdentical(t, reord, plain)
			}
		})
	}
	t.Run("frac", func(t *testing.T) {
		for seed := int64(0); seed < 4; seed++ {
			plain, err := FractionalDominatingSet(g, Options{K: 3, Seed: seed, Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			reord, err := FractionalDominatingSet(g, Options{K: 3, Seed: seed, Sequential: true, Reordered: rl})
			if err != nil {
				t.Fatal(err)
			}
			testsupport.RequireBitIdentical(t, reord, plain)
		}
	})
}

func TestReorderValidation(t *testing.T) {
	g, err := UnitDisk(60, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	other, err := UnitDisk(60, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rl := Reorder(other)
	cases := []struct {
		name string
		opts Options
	}{
		{"without sequential", Options{Reordered: Reorder(g)}},
		{"foreign graph", Options{Sequential: true, Reordered: rl}},
		{"with shards", Options{Sequential: true, Reordered: Reorder(g), Shards: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DominatingSet(g, tc.opts); !errors.Is(err, ErrInvalidOptions) {
				t.Fatalf("got %v, want ErrInvalidOptions", err)
			}
		})
	}
}
