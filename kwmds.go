package kwmds

import (
	"fmt"

	"kwmds/internal/cds"
	"kwmds/internal/core"
	"kwmds/internal/fastpath"
	"kwmds/internal/graph"
	"kwmds/internal/lp"
	"kwmds/internal/rounding"
)

// RoundingVariant selects the scaling used by the rounding stage.
type RoundingVariant = rounding.Variant

// Rounding variants.
const (
	// VariantLn is Algorithm 1 as published: p = min{1, x·ln(δ⁽²⁾+1)},
	// expected size (1+α·ln(∆+1))·|DS_OPT| (Theorem 3).
	VariantLn = rounding.Ln
	// VariantLnMinusLnLn is the remark's refinement with expected size
	// 2α(ln(∆+1) − ln ln(∆+1))·|DS_OPT|.
	VariantLnMinusLnLn = rounding.LnMinusLnLn
)

// Options configures a run of the Kuhn–Wattenhofer pipeline.
type Options struct {
	// K is the paper's trade-off parameter: O(k²) rounds for an
	// O(k·∆^{2/k}·log ∆) expected approximation. K = 0 selects the
	// paper's recommended k = Θ(log ∆) (remark after Theorem 6).
	K int
	// Seed drives the rounding stage's coin flips (the LP stage is
	// deterministic). Runs with equal seeds are identical.
	Seed int64
	// KnownDelta switches the LP stage to Algorithm 2, which assumes all
	// nodes know the global maximum degree ∆ and runs in 2k² rounds with
	// the sharper k(∆+1)^{2/k} LP guarantee. The default is Algorithm 3
	// (no global knowledge, 4k²+2k+2 rounds).
	KnownDelta bool
	// Variant selects the rounding scaling (default VariantLn).
	Variant RoundingVariant
	// Weights, when non-nil, runs the weighted fractional variant from
	// the remark after Theorem 4 with node costs c_i ∈ [1, ∞). The
	// rounding stage is unchanged (the paper gives no weighted rounding);
	// Result.WeightedCost reports the resulting set's cost. Weights takes
	// precedence over KnownDelta: the weighted variant is defined only
	// for the unknown-∆ LP stage.
	Weights []float64
	// Sequential runs the fastpath solver (internal/fastpath) instead of
	// the message-passing simulation: the same pipeline executed
	// frontier-driven and phase-parallel directly over the graph's CSR
	// arrays, drawing its buffers from a pool shared across calls. The
	// output is bit-identical to the simulated execution; round and
	// message statistics are zero. This is the path for large graphs and
	// for serving — the serve subsystem's cold solves run through it.
	Sequential bool
	// SolverWorkers bounds the fastpath solver's phase parallelism for
	// Sequential runs (≤ 0 selects GOMAXPROCS). The output is
	// bit-identical for every worker count; the knob exists so callers
	// that already run many solves concurrently — the serve subsystem's
	// worker pool — can stop the per-solve pools from oversubscribing
	// the machine. Ignored for simulated runs.
	SolverWorkers int
	// Shards, when > 1, partitions the graph into that many contiguous
	// vertex ranges and solves them as a lockstep shard group (implies
	// Sequential; at most MaxShards). Like the worker count, the shard
	// count never affects output. DominatingSet partitions per call —
	// callers solving one topology repeatedly should PartitionGraph once
	// and use DominatingSetSharded instead. Not supported by
	// FractionalDominatingSet or DominatingSetMany.
	Shards int
	// Cancel, when non-nil, aborts a Sequential solve early once the
	// channel closes: DominatingSet and FractionalDominatingSet return
	// ErrCanceled at the next LP iteration boundary. Serving stacks close
	// it when the requesting client disconnects. Ignored by simulated
	// runs, by DominatingSetMany (a batch amortizes work across callers)
	// and by sharded solves (a shard group aborts only through its
	// exchange failing).
	Cancel <-chan struct{}
	// Reordered, when non-nil, runs the Sequential solver over the
	// degree-ordered permutation of the graph (build it once with Reorder)
	// for better cache locality on skewed-degree graphs. Outputs stay
	// indexed by original vertex ids and are bit-identical to a solve
	// without it. Requires Sequential; not supported by sharded solves.
	Reordered *ReorderedGraph
	// FixedChunks pins the Sequential solver's phase scheduling to one
	// equal word-range per worker (the pre-work-stealing behavior) instead
	// of the default finer-grained guided chunks. Output is identical
	// either way; the knob exists as the benchmark control arm for the
	// scheduler and for measuring scheduling overhead in isolation.
	FixedChunks bool
}

// ErrCanceled reports that a solve was abandoned because Options.Cancel
// closed before the pipeline finished. Test with errors.Is.
var ErrCanceled = fastpath.ErrCanceled

// Result is the outcome of DominatingSet.
type Result struct {
	// InDS marks the dominating set members, indexed by vertex.
	InDS []bool
	// Size is the number of members.
	Size int
	// WeightedCost is Σ_{v∈DS} c_v when Options.Weights was set,
	// otherwise equal to Size.
	WeightedCost float64
	// Fractional is the LP stage's x-vector (a feasible fractional
	// dominating set). The slice is owned by the caller: it never aliases
	// solver-internal or pooled storage, so callers (and cache entries
	// holding a Result) may keep or mutate it freely.
	Fractional []float64
	// LPObjective is Σx of the fractional stage.
	LPObjective float64
	// K is the effective trade-off parameter used.
	K int
	// Rounds is the total number of synchronous communication rounds
	// (LP stage + rounding stage); zero when Sequential.
	Rounds int
	// Messages and Bits aggregate the deliveries and payload volume over
	// both stages; zero when Sequential.
	Messages int64
	Bits     int64
	// JoinedRandom and JoinedFixup split the set by join reason (the X
	// and Y of Theorem 3's proof).
	JoinedRandom int
	JoinedFixup  int
	// Connectors is the number of bridge vertices added by
	// ConnectedDominatingSet (zero for DominatingSet).
	Connectors int
}

// FractionalResult is the outcome of FractionalDominatingSet.
type FractionalResult struct {
	// X is a feasible fractional dominating set.
	X []float64
	// Objective is Σx (for weighted runs, compute the weighted objective
	// with WeightedObjective).
	Objective float64
	// Bound is the theorem's approximation guarantee for this run:
	// Objective ≤ Bound · LP_OPT.
	Bound float64
	// K is the effective trade-off parameter used.
	K int
	// Rounds, Messages, Bits are simulation statistics (zero when
	// Sequential).
	Rounds   int
	Messages int64
	Bits     int64
}

// effectiveK resolves Options.K, defaulting to the paper's k = Θ(log ∆).
// Callers pass the graph's maximum degree so it is computed once per entry
// point and shared with the bound derivation.
func effectiveK(k, delta int) int {
	if k != 0 {
		return k
	}
	return core.LogDeltaK(delta)
}

// lpBound returns the approximation guarantee matching the selected LP
// variant.
func lpBound(opts Options, k, delta int) float64 {
	switch {
	case opts.Weights != nil:
		cmax := 1.0
		for _, c := range opts.Weights {
			if c > cmax {
				cmax = c
			}
		}
		return core.WeightedBound(k, delta, cmax)
	case opts.KnownDelta:
		return core.KnownDeltaBound(k, delta)
	default:
		return core.UnknownDeltaBound(k, delta)
	}
}

// fastOptions maps facade options onto the fastpath solver's.
func fastOptions(opts Options, k int) fastpath.Options {
	fo := fastpath.Options{K: k, Seed: opts.Seed, Variant: opts.Variant, Workers: opts.SolverWorkers, Cancel: opts.Cancel,
		Relab: opts.Reordered, FixedChunks: opts.FixedChunks}
	switch {
	case opts.Weights != nil:
		fo.Algorithm = fastpath.AlgWeighted
		fo.Costs = opts.Weights
	case opts.KnownDelta:
		fo.Algorithm = fastpath.Alg2
	}
	return fo
}

// FractionalDominatingSet runs only the LP stage (Section 5 of the paper)
// and returns the fractional solution with its guarantee. The returned X
// is owned by the caller.
func FractionalDominatingSet(g *Graph, opts Options) (*FractionalResult, error) {
	if err := opts.Validate(g); err != nil {
		return nil, fmt.Errorf("kwmds: %w", err)
	}
	if opts.Shards > 1 {
		return nil, fmt.Errorf("kwmds: %w: Shards applies only to the full pipeline (DominatingSet)", ErrInvalidOptions)
	}
	delta := g.MaxDegree()
	k := effectiveK(opts.K, delta)
	out := &FractionalResult{K: k, Bound: lpBound(opts, k, delta)}
	if opts.Sequential {
		s := fastpath.Acquire(g.N())
		x, err := s.Fractional(g, fastOptions(opts, k))
		if err != nil {
			fastpath.Release(s)
			return nil, err
		}
		// Copy before releasing: x aliases the pooled solver's buffer.
		out.X = append(make([]float64, 0, len(x)), x...)
		fastpath.Release(s)
	} else {
		var res *core.Result
		var err error
		switch {
		case opts.Weights != nil:
			res, err = core.FractionalWeighted(g, k, opts.Weights)
		case opts.KnownDelta:
			res, err = core.FractionalKnownDelta(g, k)
		default:
			res, err = core.Fractional(g, k)
		}
		if err != nil {
			return nil, err
		}
		out.X, out.Rounds, out.Messages, out.Bits = res.X, res.Rounds, res.Messages, res.Bits
	}
	out.Objective = lp.Objective(out.X)
	return out, nil
}

// DominatingSet runs the full Kuhn–Wattenhofer pipeline: the distributed LP
// approximation followed by distributed randomized rounding. The returned
// set is always a valid dominating set; its expected size is within
// O(k·∆^{2/k}·log ∆) of optimal (Theorem 6).
func DominatingSet(g *Graph, opts Options) (*Result, error) {
	if opts.Shards > 1 {
		if err := opts.Validate(g); err != nil {
			return nil, fmt.Errorf("kwmds: %w", err)
		}
		sc, err := PartitionGraph(g, opts.Shards)
		if err != nil {
			return nil, fmt.Errorf("kwmds: %w", err)
		}
		return DominatingSetSharded(sc, opts)
	}
	if opts.Sequential {
		return fastDominatingSet(g, opts)
	}
	frac, err := FractionalDominatingSet(g, opts)
	if err != nil {
		return nil, err
	}
	rres, err := rounding.Round(g, frac.X, rounding.Options{Seed: opts.Seed, Variant: opts.Variant})
	if err != nil {
		return nil, err
	}
	res := &Result{
		InDS:         rres.InDS,
		Size:         rres.Size,
		WeightedCost: float64(rres.Size),
		Fractional:   frac.X,
		LPObjective:  frac.Objective,
		K:            frac.K,
		Rounds:       frac.Rounds + rres.Rounds,
		Messages:     frac.Messages + rres.Messages,
		Bits:         frac.Bits + rres.Bits,
		JoinedRandom: rres.JoinedRandom,
		JoinedFixup:  rres.JoinedFixup,
	}
	res.WeightedCost = weightedCost(opts.Weights, res.InDS, res.Size)
	return res, nil
}

// fastDominatingSet is the Sequential execution of the full pipeline: one
// pooled fastpath solver runs LP stage and rounding back to back over
// reused buffers, and only the final vectors are copied out.
func fastDominatingSet(g *Graph, opts Options) (*Result, error) {
	if err := opts.Validate(g); err != nil {
		return nil, fmt.Errorf("kwmds: %w", err)
	}
	delta := g.MaxDegree()
	k := effectiveK(opts.K, delta)
	s := fastpath.Acquire(g.N())
	fres, err := s.Solve(g, fastOptions(opts, k))
	if err != nil {
		fastpath.Release(s)
		return nil, err
	}
	res := &Result{
		InDS:         append(make([]bool, 0, len(fres.InDS)), fres.InDS...),
		Size:         fres.Size,
		Fractional:   append(make([]float64, 0, len(fres.X)), fres.X...),
		K:            k,
		JoinedRandom: fres.JoinedRandom,
		JoinedFixup:  fres.JoinedFixup,
	}
	fastpath.Release(s)
	res.LPObjective = lp.Objective(res.Fractional)
	res.WeightedCost = weightedCost(opts.Weights, res.InDS, res.Size)
	return res, nil
}

// DominatingSetMany runs the full pipeline once per element of optsList
// against one graph on a single pooled solver, amortizing solver
// acquisition, table setup and — for consecutive elements sharing an LP
// configuration (K/KnownDelta/Weights) — the deterministic LP stage itself,
// so only the rounding phases run per element. Every returned Result is
// bit-identical to DominatingSet with the same options; all elements run
// Sequential (the batch is a fastpath concept). This is the serve
// subsystem's cold-path batching primitive.
func DominatingSetMany(g *Graph, optsList []Options) ([]*Result, error) {
	if len(optsList) == 0 {
		return nil, nil
	}
	delta := g.MaxDegree()
	fopts := make([]fastpath.Options, len(optsList))
	out := make([]*Result, len(optsList))
	for i, opts := range optsList {
		if err := opts.Validate(g); err != nil {
			return nil, fmt.Errorf("kwmds: batch element %d: %w", i, err)
		}
		if opts.Shards > 1 {
			return nil, fmt.Errorf("kwmds: batch element %d: %w: batching does not support sharded solves", i, ErrInvalidOptions)
		}
		fopts[i] = fastOptions(opts, effectiveK(opts.K, delta))
	}
	s := fastpath.Acquire(g.N())
	err := s.SolveMany(g, fopts, func(i int, fres fastpath.Result) {
		out[i] = &Result{
			InDS:         append(make([]bool, 0, len(fres.InDS)), fres.InDS...),
			Size:         fres.Size,
			Fractional:   append(make([]float64, 0, len(fres.X)), fres.X...),
			K:            fopts[i].K,
			JoinedRandom: fres.JoinedRandom,
			JoinedFixup:  fres.JoinedFixup,
		}
	})
	fastpath.Release(s)
	if err != nil {
		return nil, err
	}
	for i, res := range out {
		res.LPObjective = lp.Objective(res.Fractional)
		res.WeightedCost = weightedCost(optsList[i].Weights, res.InDS, res.Size)
	}
	return out, nil
}

// weightedCost is Σ_{v∈DS} c_v, or |DS| when costs are nil.
func weightedCost(weights []float64, inDS []bool, size int) float64 {
	if weights == nil {
		return float64(size)
	}
	var c float64
	for v, in := range inDS {
		if in {
			c += weights[v]
		}
	}
	return c
}

// ConnectedDominatingSet runs the full pipeline and then upgrades the
// result to a *connected* dominating set — the routing-backbone structure
// the paper's introduction motivates — by bridging adjacent dominator
// clusters with at most two connector vertices each (|CDS| ≤ 3·|DS| − 2
// per connected component; Result.Connectors counts the additions). Within
// every connected component of g the returned set induces a connected
// subgraph.
func ConnectedDominatingSet(g *Graph, opts Options) (*Result, error) {
	res, err := DominatingSet(g, opts)
	if err != nil {
		return nil, err
	}
	cres, err := cds.Connect(g, res.InDS)
	if err != nil {
		return nil, err
	}
	res.InDS = cres.InCDS
	res.Size = cres.Size
	res.Connectors = cres.Connectors
	res.WeightedCost = weightedCost(opts.Weights, res.InDS, res.Size)
	return res, nil
}

// IsConnectedDominatingSet reports whether the set dominates g and induces
// a connected subgraph within every connected component.
func IsConnectedDominatingSet(g *Graph, set []bool) bool {
	return cds.IsConnectedDominatingSet(g, set)
}

// DualLowerBound returns the paper's Lemma 1 bound Σ_i 1/(δ⁽¹⁾_i+1), a
// lower bound on the size of every dominating set of g (including the
// optimum). It scales to arbitrary graphs and is the recommended yardstick
// when the exact optimum is out of reach.
func DualLowerBound(g *Graph) float64 { return lp.DegreeLowerBound(g) }

// LPOptimum computes the exact optimum of the fractional dominating set LP
// with the built-in simplex solver. Costs may be nil for the unweighted
// objective. Intended for graphs up to a few hundred vertices.
func LPOptimum(g *Graph, costs []float64) (float64, error) {
	val, _, err := lp.Optimum(g, costs)
	return val, err
}

// WeightedObjective returns Σ c_i·x_i.
func WeightedObjective(x, costs []float64) float64 { return lp.WeightedObjective(x, costs) }

// IsFractionallyFeasible reports whether x is a feasible fractional
// dominating set of g (N·x ≥ 1, x ≥ 0).
func IsFractionallyFeasible(g *Graph, x []float64) bool { return lp.IsFeasible(g, x) }

// RecommendedK returns the paper's recommended trade-off parameter
// k = Θ(log ∆) for g, which yields an O(log²∆) approximation in O(log²∆)
// rounds (remark after Theorem 6).
func RecommendedK(g *Graph) int { return core.LogDeltaK(g.MaxDegree()) }

// ensure the alias stays in sync with the internal package.
var _ = graph.SetSize
