package kwmds

import (
	"strings"
	"testing"

	"kwmds/internal/testsupport"
)

// TestDominatingSetMany: every batch element must equal the corresponding
// solo DominatingSet call bit for bit, across LP-configuration switches.
func TestDominatingSetMany(t *testing.T) {
	g, err := UnitDisk(200, 0.12, 41)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, g.N())
	for i := range weights {
		weights[i] = 1 + float64(i%5)
	}
	optsList := []Options{
		{Seed: 1, Sequential: true},
		{Seed: 2, Sequential: true},
		{Seed: 2, K: 4, Sequential: true},
		{Seed: 2, K: 4, KnownDelta: true, Sequential: true},
		{Seed: 3, K: 4, KnownDelta: true, Variant: VariantLnMinusLnLn, Sequential: true},
		{Seed: 3, K: 3, Weights: weights, Sequential: true},
		{Seed: 9, Sequential: true},
	}
	batch, err := DominatingSetMany(g, optsList)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(optsList) {
		t.Fatalf("got %d results for %d elements", len(batch), len(optsList))
	}
	for i, opts := range optsList {
		solo, err := DominatingSet(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := batch[i]
		testsupport.AssertDominatingSet(t, "batch element", g, got.InDS)
		if got.Size != solo.Size || got.K != solo.K ||
			got.JoinedRandom != solo.JoinedRandom || got.JoinedFixup != solo.JoinedFixup ||
			got.LPObjective != solo.LPObjective || got.WeightedCost != solo.WeightedCost {
			t.Fatalf("element %d: batch (size=%d k=%d jr=%d jf=%d lp=%v cost=%v) != solo (size=%d k=%d jr=%d jf=%d lp=%v cost=%v)",
				i, got.Size, got.K, got.JoinedRandom, got.JoinedFixup, got.LPObjective, got.WeightedCost,
				solo.Size, solo.K, solo.JoinedRandom, solo.JoinedFixup, solo.LPObjective, solo.WeightedCost)
		}
		for v := range solo.InDS {
			if got.InDS[v] != solo.InDS[v] {
				t.Fatalf("element %d: inDS[%d] mismatch", i, v)
			}
			if got.Fractional[v] != solo.Fractional[v] {
				t.Fatalf("element %d: fractional[%d] = %v, solo %v", i, v, got.Fractional[v], solo.Fractional[v])
			}
		}
	}
}

func TestDominatingSetManyValidation(t *testing.T) {
	g, err := Grid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := DominatingSetMany(g, nil); err != nil || res != nil {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
	bad := []Options{{Sequential: true}, {K: -2, Sequential: true}}
	if _, err := DominatingSetMany(g, bad); err == nil || !strings.Contains(err.Error(), "element 1") {
		t.Fatalf("invalid element not rejected with index: %v", err)
	}
}
