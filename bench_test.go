// One benchmark per experiment in DESIGN.md §4. Each benchmark runs a
// representative slice of the corresponding experiment (the full tables are
// produced by cmd/experiments) and reports the experiment's key quality
// metric via b.ReportMetric alongside the usual time/allocation figures.
//
//	go test -bench=. -benchmem
package kwmds_test

import (
	"testing"

	"kwmds"
	"kwmds/internal/baseline"
	"kwmds/internal/bench"
	"kwmds/internal/core"
	"kwmds/internal/exact"
	"kwmds/internal/graph"
	"kwmds/internal/lp"
	"kwmds/internal/rounding"
)

// benchGraph returns the shared medium workload: a 600-node unit-disk
// deployment (the paper's motivating topology).
func benchGraph(b *testing.B) *kwmds.Graph {
	b.Helper()
	g, err := kwmds.UnitDisk(600, 0.08, 42)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// smallGraph returns a graph small enough for the simplex LP optimum.
func smallGraph(b *testing.B) *kwmds.Graph {
	b.Helper()
	g, err := kwmds.UnitDisk(120, 0.16, 102)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkT1_Alg2Fractional measures Algorithm 2 (known ∆, distributed)
// and reports its LP approximation ratio against the exact LP optimum.
func BenchmarkT1_Alg2Fractional(b *testing.B) {
	g := smallGraph(b)
	opt, _, err := lp.Optimum(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	const k = 4
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.FractionalKnownDelta(g, k)
		if err != nil {
			b.Fatal(err)
		}
		ratio = lp.Objective(res.X) / opt
	}
	b.ReportMetric(ratio, "ratio")
	b.ReportMetric(core.KnownDeltaBound(k, g.MaxDegree()), "bound")
}

// BenchmarkT2_Alg3Fractional measures Algorithm 3 (∆ unknown, distributed).
func BenchmarkT2_Alg3Fractional(b *testing.B) {
	g := smallGraph(b)
	opt, _, err := lp.Optimum(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	const k = 4
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Fractional(g, k)
		if err != nil {
			b.Fatal(err)
		}
		ratio = lp.Objective(res.X) / opt
	}
	b.ReportMetric(ratio, "ratio")
	b.ReportMetric(core.UnknownDeltaBound(k, g.MaxDegree()), "bound")
}

// BenchmarkT3_Rounding measures Algorithm 1 on an LP-optimal input and
// reports the measured size ratio vs the exact integral optimum.
func BenchmarkT3_Rounding(b *testing.B) {
	g, err := kwmds.UnitDisk(55, 0.25, 104)
	if err != nil {
		b.Fatal(err)
	}
	_, xStar, err := lp.Optimum(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	optDS, err := exact.MinimumDominatingSet(g)
	if err != nil {
		b.Fatal(err)
	}
	opt := float64(graph.SetSize(optDS))
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rounding.Reference(g, xStar, rounding.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		total += float64(res.Size)
	}
	b.ReportMetric(total/float64(b.N)/opt, "mean-ratio")
}

// BenchmarkT4_EndToEnd measures the full pipeline (Algorithm 3 + rounding)
// on the medium workload and reports size ratio vs the Lemma 1 bound plus
// message complexity per node.
func BenchmarkT4_EndToEnd(b *testing.B) {
	g := benchGraph(b)
	lb := lp.DegreeLowerBound(g)
	const k = 3
	var size float64
	var msgs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := kwmds.DominatingSet(g, kwmds.Options{K: k, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		size = float64(res.Size)
		msgs = res.Messages
	}
	b.ReportMetric(size/lb, "ratio")
	b.ReportMetric(float64(msgs)/float64(g.N()), "msgs/node")
}

// BenchmarkT5_Baselines measures each comparison algorithm on the shared
// workload; sub-benchmarks make the costs directly comparable.
func BenchmarkT5_Baselines(b *testing.B) {
	g := benchGraph(b)
	lb := lp.DegreeLowerBound(g)
	report := func(b *testing.B, size int) {
		b.ReportMetric(float64(size)/lb, "ratio")
	}
	b.Run("kw-logdelta", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			res, err := kwmds.DominatingSet(g, kwmds.Options{Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			size = res.Size
		}
		report(b, size)
	})
	b.Run("greedy", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			size = baseline.Greedy(g).Size
		}
		report(b, size)
	})
	b.Run("jrs", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			res, err := baseline.JRS(g, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			size = res.Size
		}
		report(b, size)
	})
	b.Run("wuli", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			res, err := baseline.WuLi(g)
			if err != nil {
				b.Fatal(err)
			}
			size = res.Size
		}
		report(b, size)
	})
	b.Run("luby-mis", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			res, err := baseline.LubyMIS(g, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			size = res.Size
		}
		report(b, size)
	})
}

// BenchmarkT6_RoundingVariant measures the ln−lnln variant.
func BenchmarkT6_RoundingVariant(b *testing.B) {
	g, err := kwmds.UnitDisk(55, 0.25, 104)
	if err != nil {
		b.Fatal(err)
	}
	_, xStar, err := lp.Optimum(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rounding.Reference(g, xStar,
			rounding.Options{Seed: int64(i), Variant: rounding.LnMinusLnLn})
		if err != nil {
			b.Fatal(err)
		}
		total += float64(res.Size)
	}
	b.ReportMetric(total/float64(b.N), "mean-size")
}

// BenchmarkT7_Weighted measures the weighted fractional variant and reports
// its ratio against the weighted LP optimum.
func BenchmarkT7_Weighted(b *testing.B) {
	g := smallGraph(b)
	costs := make([]float64, g.N())
	for i := range costs {
		costs[i] = 1 + 9*float64(i%7)/6
	}
	wOpt, _, err := lp.Optimum(g, costs)
	if err != nil {
		b.Fatal(err)
	}
	const k = 4
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.ReferenceWeighted(g, k, costs)
		if err != nil {
			b.Fatal(err)
		}
		ratio = lp.WeightedObjective(res.X, costs) / wOpt
	}
	b.ReportMetric(ratio, "ratio")
}

// BenchmarkT8_LogDelta measures the pipeline at the paper's recommended
// k = log ∆ and reports rounds (the O(log²∆) claim).
func BenchmarkT8_LogDelta(b *testing.B) {
	g := benchGraph(b)
	var rounds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := kwmds.DominatingSet(g, kwmds.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkT9_DualBound measures the Lemma 1 bound computation (the
// scalable optimum estimate) on the medium workload.
func BenchmarkT9_DualBound(b *testing.B) {
	g := benchGraph(b)
	var lb float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lb = lp.DegreeLowerBound(g)
	}
	b.ReportMetric(lb, "bound")
}

// BenchmarkF1_Cascade measures the instrumented sequential reference on the
// Figure 1 instance (trace collection included).
func BenchmarkF1_Cascade(b *testing.B) {
	tables := bench.Run("F1", bench.QuickConfig())
	if len(tables) == 0 {
		b.Fatal("F1 runner missing")
	}
	g, err := kwmds.Star(200)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ReferenceKnownDelta(g, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorRound measures the raw cost of one synchronous round
// (barrier + broadcast delivery) per node on the medium workload.
func BenchmarkSimulatorRound(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.FractionalKnownDelta(g, 2)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.ReportMetric(float64(8), "rounds")
}

// BenchmarkSequentialReference contrasts the sequential fast path with the
// simulated execution measured above.
func BenchmarkSequentialReference(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ReferenceKnownDelta(g, 2); err != nil {
			b.Fatal(err)
		}
	}
}
