package kwmds

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestOptionsValidate drives every rejection path of the facade's option
// validation. Each case must surface as ErrInvalidOptions so request
// handlers can map it to a client error, and must be descriptive enough to
// name the offending field.
func TestOptionsValidate(t *testing.T) {
	g, err := UnitDisk(40, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	goodW := make([]float64, g.N())
	for i := range goodW {
		goodW[i] = 1
	}
	badEntry := make([]float64, g.N())
	copy(badEntry, goodW)
	badEntry[7] = math.NaN()
	subUnit := make([]float64, g.N())
	copy(subUnit, goodW)
	subUnit[3] = 0.5

	cases := []struct {
		name string
		opts Options
		want string // substring of the error message
	}{
		{"negative K", Options{K: -3}, "K = -3"},
		{"huge K", Options{K: MaxK + 1}, "outside [0, 64]"},
		{"short weights", Options{Weights: []float64{1, 1, 1}}, "3 weights for 40 vertices"},
		{"long weights", Options{Weights: make([]float64, 1000)}, "1000 weights for 40 vertices"},
		{"NaN weight", Options{Weights: badEntry}, "weight[7]"},
		{"sub-unit weight", Options{Weights: subUnit}, "weight[3]"},
		{"unknown variant", Options{Variant: RoundingVariant(9)}, "variant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate(g)
			if !errors.Is(err, ErrInvalidOptions) {
				t.Fatalf("Validate = %v, want ErrInvalidOptions", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			// Every facade entry point must reject the same way, without
			// panicking, since server request bodies flow through them.
			for name, run := range map[string]func() error{
				"FractionalDominatingSet": func() error { _, err := FractionalDominatingSet(g, tc.opts); return err },
				"DominatingSet":           func() error { _, err := DominatingSet(g, tc.opts); return err },
				"ConnectedDominatingSet":  func() error { _, err := ConnectedDominatingSet(g, tc.opts); return err },
			} {
				if err := run(); !errors.Is(err, ErrInvalidOptions) {
					t.Errorf("%s = %v, want ErrInvalidOptions", name, err)
				}
			}
		})
	}

	if err := (Options{K: -1}).Validate(nil); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Validate(nil graph) = %v, want ErrInvalidOptions", err)
	}
	if err := (Options{K: 3, Seed: 9, Weights: goodW, Variant: VariantLnMinusLnLn}).Validate(g); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}
