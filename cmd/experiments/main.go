// Command experiments regenerates every experiment table in EXPERIMENTS.md
// (ids T1–T9 and F1, defined in DESIGN.md §4).
//
// Usage:
//
//	experiments                 # run everything at full scale (markdown)
//	experiments -exp T4 -quick  # one experiment at reduced scale
//	experiments -format plain   # aligned text instead of markdown
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kwmds/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (T1..T9, F1, L1) or 'all'")
		quick  = flag.Bool("quick", false, "reduced workload sizes and trial counts")
		format = flag.String("format", "md", "md|plain")
		trials = flag.Int("trials", 0, "override trial count (0 = default)")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}

	ran := 0
	for _, r := range bench.Runners() {
		if *exp != "all" && !strings.EqualFold(*exp, r.ID) {
			continue
		}
		ran++
		start := time.Now()
		tables := r.Run(cfg)
		fmt.Printf("<!-- %s: %s (%.1fs) -->\n\n", r.ID, r.Description, time.Since(start).Seconds())
		for _, t := range tables {
			if *format == "plain" {
				fmt.Println(t.Plain())
			} else {
				fmt.Println(t.Markdown())
			}
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment id %q\n", *exp)
		os.Exit(1)
	}
}
