// Command solvebench benchmarks the sequential solve path across backends
// and writes BENCH_solve.json: the pre-gating instrumented reference, the
// gated reference, and the internal/fastpath solver at several worker
// counts, over workloads from 10⁴ up to the million-vertex XL tier —
// plus a refreshed uncached serve measurement comparing the old "sim"
// cold-solve engine against the fastpath default.
//
// Usage:
//
//	solvebench [-out BENCH_solve.json] [-quick]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"kwmds/internal/bench"
	"kwmds/internal/gen"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "solvebench:", err)
	os.Exit(1)
}

func main() {
	out := flag.String("out", "BENCH_solve.json", "output path")
	quick := flag.Bool("quick", false, "smaller workloads (smoke run)")
	flag.Parse()

	runs, err := bench.SolveBench(bench.SolveBenchConfig{Quick: *quick})
	if err != nil {
		fail(err)
	}
	// Per-workload speedups against both reference baselines.
	instr := map[string]float64{}
	plain := map[string]float64{}
	for _, r := range runs {
		if r.Skipped {
			continue
		}
		switch r.Backend {
		case "reference+instr":
			instr[r.Workload] = r.WallMS
		case "reference":
			plain[r.Workload] = r.WallMS
		}
	}
	type row struct {
		bench.SolveRun
		SpeedupVsInstr float64 `json:"speedup_vs_instrumented_ref,omitempty"`
		SpeedupVsRef   float64 `json:"speedup_vs_ref,omitempty"`
	}
	var rows []row
	for _, r := range runs {
		rw := row{SolveRun: r}
		if !r.Skipped && r.WallMS > 0 {
			if base, ok := instr[r.Workload]; ok && base > 0 {
				rw.SpeedupVsInstr = base / r.WallMS
			}
			if base, ok := plain[r.Workload]; ok && base > 0 {
				rw.SpeedupVsRef = base / r.WallMS
			}
		}
		rows = append(rows, rw)
		if r.Skipped {
			fmt.Printf("%-10s %-16s skipped\n", r.Workload, r.Backend)
			continue
		}
		fmt.Printf("%-10s %-16s %10.1f ms  |DS|=%-6d  vs instr %6.2fx  vs ref %6.2fx\n",
			r.Workload, r.Backend, r.WallMS, r.Size, rw.SpeedupVsInstr, rw.SpeedupVsRef)
	}

	// Refreshed uncached serve bench: the cold-solve path before (engine
	// "sim", the pre-PR default) and after (engine "fast").
	g, err := gen.UnitDisk(10000, 0.02, 1)
	if err != nil {
		fail(err)
	}
	uncached := 64
	if *quick {
		uncached = 8
	}
	var serveRuns []*bench.ServeLoadReport
	for _, engine := range []string{"sim", "fast"} {
		r, err := bench.ServeLoad(bench.ServeLoadConfig{
			Workload: "udg-10k", G: g, Concurrency: 8,
			Requests: uncached, Seeds: uncached,
			Workers: runtime.GOMAXPROCS(0), Engine: engine,
		})
		if err != nil {
			fail(err)
		}
		serveRuns = append(serveRuns, r)
		fmt.Printf("serve udg-10k conc=8 engine=%-4s uncached: %8.1f req/s  p50=%7.1fms p99=%7.1fms  allocs/req=%.0f\n",
			engine, r.ReqPerSec, r.P50MS, r.P99MS, r.AllocsPerReq)
	}

	doc := map[string]any{
		"description": "Sequential solve-path benchmarks (cmd/solvebench). Each solve row is one full pipeline run (LP stage + rounding, k=3, seed 1): 'reference+instr' is the core reference with proof instrumentation (what every sequential solve paid before the Instrument gate), 'reference' is the gated reference, 'fastpath/wN' the internal/fastpath frontier solver at N workers. All backends are bit-identical (|DS| cross-checked per row). The serve section replays the uncached cold-solve load with the old 'sim' engine vs the new 'fast' default.",
		"environment": map[string]any{
			"goos": runtime.GOOS, "goarch": runtime.GOARCH,
			"go": runtime.Version(), "gomaxprocs": runtime.GOMAXPROCS(0),
		},
		"solve":          rows,
		"serve_uncached": serveRuns,
	}
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fail(err)
	}
	f.Close()
	fmt.Println("wrote", *out)
}
