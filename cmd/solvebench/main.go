// Command solvebench is the legacy solve-backend benchmark binary, kept as
// a thin compatibility wrapper over internal/bench.SolveBenchMain: the
// instrumented/gated references and the fastpath solver at several worker
// counts over 10⁴..10⁶⁺-vertex workloads, plus the uncached serve engine
// comparison, written to BENCH_solve.json. New measurements should prefer
// `kwmds bench` with an inproc-fast scenario (see docs/BENCHMARKS.md).
//
// Usage:
//
//	solvebench [-out BENCH_solve.json] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"kwmds/internal/bench"
)

func main() {
	out := flag.String("out", "BENCH_solve.json", "output path")
	quick := flag.Bool("quick", false, "smaller workloads (smoke run)")
	flag.Parse()
	if err := bench.SolveBenchMain(*out, *quick, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "solvebench:", err)
		os.Exit(1)
	}
}
