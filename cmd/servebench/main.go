// Command servebench is the legacy serve load-generator binary, kept as a
// thin compatibility wrapper over internal/bench.ServeBenchMain: cached +
// uncached sweeps on 1k/10k-node unit-disk graphs at concurrency 1/8/64,
// written to BENCH_serve.json. New measurements should prefer `kwmds bench`
// with an http-serve scenario (see docs/BENCHMARKS.md), which subsumes this
// sweep and adds declarative workloads, open-loop rates and a unified
// report.
//
// Usage:
//
//	servebench [-out BENCH_serve.json] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"kwmds/internal/bench"
)

func main() {
	out := flag.String("out", "BENCH_serve.json", "output path")
	quick := flag.Bool("quick", false, "smaller request counts (smoke run)")
	flag.Parse()
	if err := bench.ServeBenchMain(*out, *quick, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "servebench:", err)
		os.Exit(1)
	}
}
