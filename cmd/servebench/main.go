// Command servebench runs the serve-subsystem load generator against
// in-process instances and writes BENCH_serve.json: sustained req/s and
// latency percentiles on 1k/10k-node unit-disk graphs at concurrency
// 1/8/64, for both the cached workload (one seed, repeated queries) and an
// uncached workload (a fresh seed per request, every request a full
// pipeline run through the bounded pool).
//
// Usage:
//
//	servebench [-out BENCH_serve.json] [-quick]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"kwmds/internal/bench"
	"kwmds/internal/gen"
	"kwmds/internal/graph"
)

type workload struct {
	name string
	g    *graph.Graph
}

func main() {
	out := flag.String("out", "BENCH_serve.json", "output path")
	quick := flag.Bool("quick", false, "smaller request counts (smoke run)")
	flag.Parse()

	mk := func(name string, n int, radius float64) workload {
		g, err := gen.UnitDisk(n, radius, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "servebench:", err)
			os.Exit(1)
		}
		return workload{name, g}
	}
	workloads := []workload{
		mk("udg-1k", 1000, 0.05),
		mk("udg-10k", 10000, 0.02),
	}
	cachedReqs, uncachedReqs := 2000, 64
	if *quick {
		cachedReqs, uncachedReqs = 200, 16
	}

	type run struct {
		Mode string `json:"mode"`
		*bench.ServeLoadReport
	}
	var runs []run
	for _, w := range workloads {
		for _, conc := range []int{1, 8, 64} {
			r, err := bench.ServeLoad(bench.ServeLoadConfig{
				Workload: w.name, G: w.g, Concurrency: conc,
				Requests: cachedReqs, Seeds: 1, Workers: runtime.GOMAXPROCS(0),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "servebench:", err)
				os.Exit(1)
			}
			runs = append(runs, run{"cached", r})
			fmt.Printf("%-8s conc=%-3d cached:   %8.0f req/s  p50=%6.2fms p99=%6.2fms cold=%7.1fms hit=%.2f\n",
				w.name, conc, r.ReqPerSec, r.P50MS, r.P99MS, r.ColdMS, r.HitRate)

			u, err := bench.ServeLoad(bench.ServeLoadConfig{
				Workload: w.name, G: w.g, Concurrency: conc,
				Requests: uncachedReqs, Seeds: uncachedReqs, Workers: runtime.GOMAXPROCS(0),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "servebench:", err)
				os.Exit(1)
			}
			runs = append(runs, run{"uncached", u})
			fmt.Printf("%-8s conc=%-3d uncached: %8.1f req/s  p50=%6.1fms p99=%6.1fms\n",
				w.name, conc, u.ReqPerSec, u.P50MS, u.P99MS)
		}
	}

	doc := map[string]any{
		"description": "kwmds serve load-generator results (cmd/servebench). 'cached' issues repeated identical (graph_ref, options) queries — after one cold pipeline run every request is an LRU hit; 'uncached' rotates the seed per request so every request is a full pipeline run through the bounded worker pool. Latencies are client-observed over loopback HTTP.",
		"environment": map[string]any{
			"goos": runtime.GOOS, "goarch": runtime.GOARCH,
			"go": runtime.Version(), "gomaxprocs": runtime.GOMAXPROCS(0),
		},
		"runs": runs,
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "servebench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "servebench:", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Println("wrote", *out)
}
