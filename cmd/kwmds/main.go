// Command kwmds runs a dominating set algorithm on a graph read from a
// file (or stdin) in the plain edge-list format and prints the resulting
// set together with quality and communication statistics.
//
// Usage:
//
//	kwmds -graph network.edges -algo kw -k 3 -seed 7
//	graphgen -family udg -n 500 -r 0.08 | kwmds -algo greedy
//
// Algorithms: kw (Algorithm 3 + rounding, the paper's pipeline), kw2
// (Algorithm 2 + rounding, assumes global ∆), kwcds (kw + connected
// dominating set), frac (LP stage only), greedy, jrs, wuli, mis, trivial,
// exact (small graphs only). The implementation lives in internal/cli so
// it is fully unit-tested.
package main

import (
	"flag"
	"fmt"
	"os"

	"kwmds/internal/cli"
)

func main() {
	var cfg cli.Config
	flag.StringVar(&cfg.GraphPath, "graph", "-", "edge-list file ('-' for stdin)")
	flag.StringVar(&cfg.Algo, "algo", "kw", "kw|kw2|kwcds|frac|greedy|jrs|wuli|mis|trivial|exact")
	flag.IntVar(&cfg.K, "k", 0, "trade-off parameter (0 = log ∆)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "random seed")
	flag.BoolVar(&cfg.LnMinusLn, "lnlnln", false, "use the ln−lnln rounding variant")
	flag.BoolVar(&cfg.Members, "members", false, "print the chosen vertex ids")
	flag.BoolVar(&cfg.Sequential, "sequential", false, "run the sequential reference (no message stats)")
	flag.Parse()

	if err := cli.Run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kwmds:", err)
		os.Exit(1)
	}
}
