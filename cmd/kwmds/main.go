// Command kwmds runs a dominating set algorithm on a graph read from a
// file (or stdin) in the plain edge-list format and prints the resulting
// set together with quality and communication statistics. With the serve
// subcommand it instead runs as a long-lived HTTP JSON service whose
// preloaded graphs are mutable through POST /v1/graphs/{name}/mutate
// (epoch-batched edge/vertex/weight mutations via internal/dyngraph);
// with the shard subcommand it runs as a shard worker (a serve instance
// that also answers the shard protocol and joins per-solve data meshes);
// with the bench subcommand it executes declarative benchmark scenarios
// (internal/kwbench) and merges the results into BENCH_kwbench.json.
//
// Usage:
//
//	kwmds -graph network.edges -algo kw -k 3 -seed 7
//	graphgen -family udg -n 500 -r 0.08 | kwmds -algo greedy
//	kwmds -graph gen:udg:500:0.08:1 -algo kwcds
//	kwmds serve -addr :8080 -workers 8 -preload udg-10k=gen:udg:10000:0.02:1
//	kwmds serve -addr :8080 -workers 4 -max-queue 64 -queue-timeout 250ms -preload g=gen:udg:10000:0.02:1
//	kwmds serve -addr :8080 -shards 4 -preload udg-10k=gen:udg:10000:0.02:1
//	kwmds shard -addr :8081 -data-addr :9081 -preload udg-10k=gen:udg:10000:0.02:1
//	kwmds serve -addr :8080 -router 127.0.0.1:8081,127.0.0.1:8082 -shards 2
//	kwmds convert -in network.edges -out network.kwcsr
//	kwmds serve -preload big=network.kwcsr
//	kwmds serve -preload big=network.kwcsr -reorder -pprof 127.0.0.1:6060
//	kwmds bench -scenario scenarios/serve-cached.json
//	kwmds bench -scenario scenarios/solve-skew-ba100k.toml -cpuprofile cpu.out
//	kwmds bench -validate BENCH_kwbench.json
//
// Algorithms: kw (Algorithm 3 + rounding, the paper's pipeline), kw2
// (Algorithm 2 + rounding, assumes global ∆), kwcds (kw + connected
// dominating set), frac (LP stage only), greedy, jrs, wuli, mis, trivial,
// exact (small graphs only). The implementation lives in internal/cli so
// it is fully unit-tested; the HTTP service lives in internal/server and
// the benchmark harness in internal/kwbench (see docs/ARCHITECTURE.md and
// docs/BENCHMARKS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kwmds/internal/cli"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := serveMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "kwmds serve:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "shard" {
		if err := shardMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "kwmds shard:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		if err := benchMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "kwmds bench:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "convert" {
		if err := convertMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "kwmds convert:", err)
			os.Exit(1)
		}
		return
	}

	var cfg cli.Config
	flag.StringVar(&cfg.GraphPath, "graph", "-", "edge-list file ('-' for stdin, 'gen:…' to generate)")
	flag.StringVar(&cfg.Algo, "algo", "kw", "kw|kw2|kwcds|frac|greedy|jrs|wuli|mis|trivial|exact")
	flag.IntVar(&cfg.K, "k", 0, "trade-off parameter (0 = log ∆)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "random seed")
	flag.BoolVar(&cfg.LnMinusLn, "lnlnln", false, "use the ln−lnln rounding variant")
	flag.BoolVar(&cfg.Members, "members", false, "print the chosen vertex ids")
	flag.BoolVar(&cfg.Sequential, "sequential", false, "run the fastpath solver instead of the simulation (same output, no message stats)")
	flag.Parse()

	if err := cli.Run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kwmds:", err)
		os.Exit(1)
	}
}

func serveMain(args []string) error {
	var cfg cli.ServeConfig
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	fs.StringVar(&cfg.Addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.Workers, "workers", 0, "max concurrent pipeline runs (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.CacheEntries, "cache", 0, "LRU result-cache capacity (0 = default, -1 disables)")
	fs.Func("preload", "name=file or name=gen:spec, repeatable", func(v string) error {
		cfg.Preload = append(cfg.Preload, v)
		return nil
	})
	fs.IntVar(&cfg.MaxQueue, "max-queue", 0, "admission queue bound: solves beyond workers running + this many waiting are shed with 429 (0 = unbounded)")
	fs.DurationVar(&cfg.QueueTimeout, "queue-timeout", 0, "max wait for a worker slot before an admitted solve is shed with 429 (0 = no timeout)")
	fs.IntVar(&cfg.Shards, "shards", 0, "run cold solves on the partitioned engine: in-proc shard count, or scatter width with -router")
	fs.Func("router", "shard-worker base URL (run as a scatter-gather router; repeatable, or comma-separated)", func(v string) error {
		for _, w := range strings.Split(v, ",") {
			if w = strings.TrimSpace(w); w != "" {
				cfg.RouterWorkers = append(cfg.RouterWorkers, w)
			}
		}
		return nil
	})
	fs.IntVar(&cfg.Replicas, "replicas", 0, "router placement candidates per graph for failover (0 = default 2)")
	fs.BoolVar(&cfg.Reorder, "reorder", false, "solve preloaded graphs over a cached degree-ordered relabeling (bit-identical output, better locality on skewed graphs)")
	fs.StringVar(&cfg.DataDir, "data-dir", "", "make preloaded graphs durable: WAL + snapshots under this directory, recovered on restart")
	fs.IntVar(&cfg.SnapshotEpochs, "snapshot-epochs", 0, "compact a durable graph's WAL into a snapshot every N epochs (0 = default 128, -1 disables)")
	fs.Int64Var(&cfg.SnapshotBytes, "snapshot-bytes", 0, "compact a durable graph's WAL once it passes this size (0 = default 4 MiB, -1 disables)")
	fs.StringVar(&cfg.PprofAddr, "pprof", "", "serve /debug/pprof on this address (off when empty)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ready := make(chan string, 1)
	go func() { fmt.Fprintln(os.Stderr, "kwmds serve: listening on", <-ready) }()
	return cli.RunServe(cfg, ready)
}

// shardMain runs a shard worker: a full serve instance that additionally
// answers /shard/v1/* and opens the mesh data listener a serve router's
// scatters exchange boundary state over.
func shardMain(args []string) error {
	cfg := cli.ServeConfig{ShardWorker: true}
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	fs.StringVar(&cfg.Addr, "addr", ":8080", "HTTP listen address")
	fs.IntVar(&cfg.Workers, "workers", 0, "max concurrent pipeline runs (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.CacheEntries, "cache", 0, "LRU result-cache capacity (0 = default, -1 disables)")
	fs.Func("preload", "name=file or name=gen:spec, repeatable (every worker preloads the same set)", func(v string) error {
		cfg.Preload = append(cfg.Preload, v)
		return nil
	})
	fs.StringVar(&cfg.DataAddr, "data-addr", "127.0.0.1:0", "mesh data listen address for shard-to-shard exchanges")
	fs.StringVar(&cfg.DataAdvertise, "data-advertise", "", "mesh address advertised to the router (default: the bound data-addr)")
	fs.BoolVar(&cfg.Reorder, "reorder", false, "solve preloaded graphs over a cached degree-ordered relabeling (bit-identical output, better locality on skewed graphs)")
	fs.StringVar(&cfg.PprofAddr, "pprof", "", "serve /debug/pprof on this address (off when empty)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ready := make(chan string, 1)
	go func() { fmt.Fprintln(os.Stderr, "kwmds shard: listening on", <-ready) }()
	return cli.RunServe(cfg, ready)
}

func convertMain(args []string) error {
	var cfg cli.ConvertConfig
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	fs.StringVar(&cfg.In, "in", "", "input graph: edge-list file, '-' (stdin), 'gen:…' spec, or .kwcsr container")
	fs.StringVar(&cfg.Out, "out", "", "output path (.kwcsr suffix selects the binary CSR container, anything else edge-list text)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return cli.RunConvert(cfg, os.Stdout)
}

func benchMain(args []string) error {
	var cfg cli.BenchConfig
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	fs.Func("scenario", "scenario spec file (.json or .toml), repeatable", func(v string) error {
		cfg.Scenarios = append(cfg.Scenarios, v)
		return nil
	})
	fs.StringVar(&cfg.Out, "out", "BENCH_kwbench.json", "unified report path (results merge by scenario name)")
	fs.StringVar(&cfg.Legacy, "legacy", "", "also export http-serve results in the BENCH_serve.json row shape to this path")
	fs.BoolVar(&cfg.Quick, "quick", false, "shrink the load for a smoke run (graphs unchanged)")
	fs.StringVar(&cfg.Validate, "validate", "", "validate an existing report file against the kwbench schema and exit")
	fs.StringVar(&cfg.CPUProfile, "cpuprofile", "", "write a CPU profile covering the scenario runs to this file")
	fs.StringVar(&cfg.MemProfile, "memprofile", "", "write a heap profile after the final scenario to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return cli.RunBench(cfg, os.Stdout)
}
