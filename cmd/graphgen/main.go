// Command graphgen emits graphs from the built-in generator families in the
// plain edge-list format (stdout or a file), for use with cmd/kwmds and
// external tools.
//
// Usage:
//
//	graphgen -family udg -n 500 -r 0.08 -seed 42 -o network.edges
//	graphgen -family gnp -n 1000 -p 0.01
//	graphgen -family grid -rows 20 -cols 30
package main

import (
	"flag"
	"fmt"
	"os"

	"kwmds"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family = flag.String("family", "gnp", "gnp|udg|grid|torus|tree|regular|ba|star|clique|path|cycle|cliquechain")
		n      = flag.Int("n", 100, "vertex count")
		p      = flag.Float64("p", 0.05, "edge probability (gnp)")
		r      = flag.Float64("r", 0.1, "radius (udg)")
		rows   = flag.Int("rows", 10, "rows (grid/torus)")
		cols   = flag.Int("cols", 10, "cols (grid/torus)")
		d      = flag.Int("d", 3, "degree (regular)")
		m      = flag.Int("m", 2, "attachment count (ba)")
		count  = flag.Int("count", 4, "clique count (cliquechain)")
		size   = flag.Int("size", 5, "clique size (cliquechain)")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "-", "output file ('-' for stdout)")
	)
	flag.Parse()

	var (
		g   *kwmds.Graph
		err error
	)
	switch *family {
	case "gnp":
		g, err = kwmds.GNP(*n, *p, *seed)
	case "udg":
		g, err = kwmds.UnitDisk(*n, *r, *seed)
	case "grid":
		g, err = kwmds.Grid(*rows, *cols)
	case "torus":
		g, err = kwmds.Torus(*rows, *cols)
	case "tree":
		g, err = kwmds.RandomTree(*n, *seed)
	case "regular":
		g, err = kwmds.RandomRegular(*n, *d, *seed)
	case "ba":
		g, err = kwmds.PrefAttach(*n, *m, *seed)
	case "star":
		g, err = kwmds.Star(*n)
	case "clique":
		g, err = kwmds.Clique(*n)
	case "path":
		g, err = kwmds.Path(*n)
	case "cycle":
		g, err = kwmds.Cycle(*n)
	case "cliquechain":
		g, err = kwmds.CliqueChain(*count, *size)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(w, "# graphgen -family %s (n=%d m=%d Δ=%d seed=%d)\n",
		*family, g.N(), g.M(), g.MaxDegree(), *seed)
	return kwmds.WriteGraph(w, g)
}
